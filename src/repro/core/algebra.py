"""Closure operations on function specs: the composition calculus of Section 2.3.

Observation 2.2 makes output-oblivious CRNs closed under feed-forward
composition, and the proof of Lemma 6.2 uses three specific combinators —
minimum, addition (fan-in of outputs), and composition — as its building
blocks.  This module lifts those combinators to :class:`FunctionSpec` level:
each combinator combines the callables, the eventually-min representations
(when that is possible exactly), and the known CRNs (by concatenation), so the
result is again a fully usable spec.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.specs import FunctionSpec
from repro.crn.composition import concatenate
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.quilt_affine import QuiltAffine, all_residues


def _common_period(pieces: Sequence[QuiltAffine]) -> int:
    period = 1
    for piece in pieces:
        period = period * piece.period // math.gcd(period, piece.period)
    return period


def _add_quilts(a: QuiltAffine, b: QuiltAffine) -> QuiltAffine:
    """The pointwise sum of two quilt-affine functions (again quilt-affine)."""
    if a.dimension != b.dimension:
        raise ValueError("cannot add quilt-affine functions of different dimensions")
    period = _common_period([a, b])
    gradient = tuple(x + y for x, y in zip(a.gradient, b.gradient))
    offsets: Dict[Tuple[int, ...], Fraction] = {}
    for residue in all_residues(a.dimension, period):
        offsets[residue] = a.offset(residue) + b.offset(residue)
    return QuiltAffine(gradient, period, offsets, name=f"{a.name}+{b.name}", validate=False)


def min_of_specs(specs: Sequence[FunctionSpec], name: str = "") -> FunctionSpec:
    """The pointwise minimum of several specs over the *same* input vector.

    The eventually-min representations combine exactly (union of pieces, max of
    thresholds); a CRN is built by feeding fan-out copies of the inputs into
    each component CRN and joining the outputs with a single ``min`` reaction.
    """
    if not specs:
        raise ValueError("min_of_specs needs at least one spec")
    dimension = specs[0].dimension
    if any(spec.dimension != dimension for spec in specs):
        raise ValueError("all specs must have the same input dimension")

    def func(x: Sequence[int]) -> int:
        return min(spec(x) for spec in specs)

    eventually_min: Optional[EventuallyMin] = None
    if all(spec.eventually_min is not None for spec in specs):
        pieces: List[QuiltAffine] = []
        threshold = [0] * dimension
        for spec in specs:
            pieces.extend(spec.eventually_min.pieces)
            threshold = [max(a, b) for a, b in zip(threshold, spec.eventually_min.threshold)]
        eventually_min = EventuallyMin(pieces, tuple(threshold), name=name or "min-of-specs")

    known_crn: Optional[CRN] = None
    if all(spec.known_crn is not None and spec.known_crn.is_output_oblivious() for spec in specs):
        known_crn = _fan_in_crn(specs, joiner="min", name=name or "min-of-specs")

    return FunctionSpec(
        name=name or "min(" + ",".join(spec.name for spec in specs) + ")",
        dimension=dimension,
        func=func,
        eventually_min=eventually_min,
        known_crn=known_crn,
        expected_obliviously_computable=True
        if all(spec.expected_obliviously_computable for spec in specs)
        else None,
    )


def sum_of_specs(specs: Sequence[FunctionSpec], name: str = "") -> FunctionSpec:
    """The pointwise sum of several specs over the same input vector.

    Exact when every summand carries a *single-piece* eventually-min
    representation (sums of genuine minima are not minima in general, so the
    representation is dropped in that case).
    """
    if not specs:
        raise ValueError("sum_of_specs needs at least one spec")
    dimension = specs[0].dimension
    if any(spec.dimension != dimension for spec in specs):
        raise ValueError("all specs must have the same input dimension")

    def func(x: Sequence[int]) -> int:
        return sum(spec(x) for spec in specs)

    eventually_min: Optional[EventuallyMin] = None
    if all(
        spec.eventually_min is not None and len(spec.eventually_min.pieces) == 1 for spec in specs
    ):
        total: Optional[QuiltAffine] = None
        threshold = [0] * dimension
        for spec in specs:
            piece = spec.eventually_min.pieces[0]
            total = piece if total is None else _add_quilts(total, piece)
            threshold = [max(a, b) for a, b in zip(threshold, spec.eventually_min.threshold)]
        eventually_min = EventuallyMin([total], tuple(threshold), name=name or "sum-of-specs")

    known_crn: Optional[CRN] = None
    if all(spec.known_crn is not None and spec.known_crn.is_output_oblivious() for spec in specs):
        known_crn = _fan_in_crn(specs, joiner="sum", name=name or "sum-of-specs")

    return FunctionSpec(
        name=name or "+".join(spec.name for spec in specs),
        dimension=dimension,
        func=func,
        eventually_min=eventually_min,
        known_crn=known_crn,
        expected_obliviously_computable=True
        if all(spec.expected_obliviously_computable for spec in specs)
        else None,
    )


def scale_spec(spec: FunctionSpec, factor: int, name: str = "") -> FunctionSpec:
    """The spec of ``factor · f`` (composition with the doubling-style CRN ``W -> factor·Y``)."""
    if factor < 0:
        raise ValueError("the scaling factor must be nonnegative")

    def func(x: Sequence[int]) -> int:
        return factor * spec(x)

    eventually_min: Optional[EventuallyMin] = None
    if spec.eventually_min is not None:
        scaled_pieces = []
        for piece in spec.eventually_min.pieces:
            gradient = tuple(g * factor for g in piece.gradient)
            offsets = {
                residue: piece.offset(residue) * factor
                for residue in all_residues(piece.dimension, piece.period)
            }
            scaled_pieces.append(
                QuiltAffine(gradient, piece.period, offsets, name=f"{factor}*{piece.name}", validate=False)
            )
        eventually_min = EventuallyMin(
            scaled_pieces, spec.eventually_min.threshold, name=name or f"{factor}*{spec.name}"
        )

    known_crn: Optional[CRN] = None
    if spec.known_crn is not None and spec.known_crn.is_output_oblivious() and factor > 0:
        w, y = Species("W"), Species("Y")
        scaler = CRN([Reaction(w, Expression({y: factor}))], (w,), y, name=f"x{factor}")
        known_crn = concatenate(spec.known_crn, scaler, name=name or f"{factor}*{spec.name}")

    return FunctionSpec(
        name=name or f"{factor}*{spec.name}",
        dimension=spec.dimension,
        func=func,
        eventually_min=eventually_min,
        known_crn=known_crn,
        expected_obliviously_computable=spec.expected_obliviously_computable,
    )


def compose_specs(outer: FunctionSpec, inner: FunctionSpec, name: str = "") -> FunctionSpec:
    """The composition ``outer ∘ inner`` for a 1-input ``outer`` (Observation 2.2 shape).

    The callable always composes; the CRN composes by concatenation when the
    inner CRN is output-oblivious.  Eventually-min representations do not
    compose exactly in general, so the composed spec carries none (it can be
    re-derived by decomposition when a semilinear form is available).
    """
    if outer.dimension != 1:
        raise ValueError("compose_specs requires a single-input outer function")

    def func(x: Sequence[int]) -> int:
        return outer((inner(x),))

    known_crn: Optional[CRN] = None
    if (
        inner.known_crn is not None
        and outer.known_crn is not None
        and inner.known_crn.is_output_oblivious()
    ):
        known_crn = concatenate(
            inner.known_crn, outer.known_crn, name=name or f"{outer.name}∘{inner.name}"
        )

    return FunctionSpec(
        name=name or f"{outer.name}∘{inner.name}",
        dimension=inner.dimension,
        func=func,
        known_crn=known_crn,
        expected_obliviously_computable=(
            True
            if inner.expected_obliviously_computable and outer.expected_obliviously_computable
            else None
        ),
    )


def _fan_in_crn(specs: Sequence[FunctionSpec], joiner: str, name: str) -> CRN:
    """Run each spec's CRN on its own copy of the inputs and join the outputs.

    ``joiner="min"`` adds the single reaction ``O_1 + ... + O_m -> Y``;
    ``joiner="sum"`` adds one reaction ``O_k -> Y`` per component.
    """
    dimension = specs[0].dimension
    inputs = tuple(Species(f"X{i + 1}") for i in range(dimension))
    output = Species("Y")
    leader = Species("L")

    reactions: List[Reaction] = []
    leader_products: Dict[Species, int] = {}
    component_outputs: List[Species] = []
    demands: List[List[Species]] = [[] for _ in range(dimension)]

    for index, spec in enumerate(specs):
        component = spec.known_crn.with_prefix(f"c{index}_")
        reactions.extend(component.reactions)
        component_outputs.append(component.output_species)
        if component.leader is not None:
            leader_products[component.leader] = leader_products.get(component.leader, 0) + 1
        for coordinate, input_sp in enumerate(component.input_species):
            demands[coordinate].append(input_sp)

    for coordinate in range(dimension):
        products: Dict[Species, int] = {}
        for sp in demands[coordinate]:
            products[sp] = products.get(sp, 0) + 1
        reactions.append(Reaction(inputs[coordinate], Expression(products), name=f"fanout{coordinate}"))

    if joiner == "min":
        reactions.append(
            Reaction(Expression({sp: 1 for sp in component_outputs}), output, name="join-min")
        )
    elif joiner == "sum":
        for sp in component_outputs:
            reactions.append(Reaction(sp, output, name="join-sum"))
    else:
        raise ValueError(f"unknown joiner {joiner!r}")

    crn_leader: Optional[Species] = None
    if leader_products:
        crn_leader = leader
        reactions.append(Reaction(leader, Expression(leader_products), name="leader-split"))

    return CRN(reactions, inputs, output, leader=crn_leader, name=name)
