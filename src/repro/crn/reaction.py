"""Reactions: pairs (reactants, products) of species multisets.

A reaction ``(R, P)`` is applicable to a configuration ``C`` when ``R <= C``
pointwise, and applying it yields ``C - R + P`` (Section 2.2 of the paper).
Reactions optionally carry a mass-action rate constant used only by the
stochastic (Gillespie) simulator; stable computation is rate-independent.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.crn.configuration import Configuration
from repro.crn.species import Expression, Species, _as_expression


class Reaction:
    """A single chemical reaction with optional rate constant.

    Parameters
    ----------
    reactants, products:
        Species multisets (as :class:`Expression`, mappings, or single species).
    rate:
        Mass-action rate constant, used by the stochastic simulator only.
    name:
        Optional human-readable label.
    """

    __slots__ = ("_reactants", "_products", "rate", "name")

    def __init__(
        self,
        reactants: Union[Expression, Species, Mapping[Species, int], int],
        products: Union[Expression, Species, Mapping[Species, int], int],
        rate: float = 1.0,
        name: str = "",
    ) -> None:
        self._reactants = _as_expression(reactants)
        self._products = _as_expression(products)
        if self._reactants.is_empty() and self._products.is_empty():
            raise ValueError("a reaction must have at least one reactant or product")
        if not (isinstance(rate, (int, float)) and math.isfinite(rate) and rate > 0):
            raise ValueError(f"reaction rate must be a positive finite number, got {rate!r}")
        self.rate = float(rate)
        self.name = name

    # -- accessors -----------------------------------------------------------

    @property
    def reactants(self) -> Expression:
        """The reactant side of the reaction."""
        return self._reactants

    @property
    def products(self) -> Expression:
        """The product side of the reaction."""
        return self._products

    def species(self) -> Tuple[Species, ...]:
        """All species appearing in the reaction, sorted by name."""
        seen = set(self._reactants.species()) | set(self._products.species())
        return tuple(sorted(seen, key=lambda s: s.name))

    def reactant_count(self, sp: Species) -> int:
        """Stoichiometric coefficient of ``sp`` on the reactant side."""
        return self._reactants.count(sp)

    def product_count(self, sp: Species) -> int:
        """Stoichiometric coefficient of ``sp`` on the product side."""
        return self._products.count(sp)

    def net_change(self, sp: Species) -> int:
        """Net change in the count of ``sp`` when this reaction fires once."""
        return self._products.count(sp) - self._reactants.count(sp)

    def net_changes(self) -> Dict[Species, int]:
        """Net change for every species with a nonzero net change."""
        changes: Dict[Species, int] = {}
        for sp in self.species():
            delta = self.net_change(sp)
            if delta != 0:
                changes[sp] = delta
        return changes

    def order(self) -> int:
        """The molecularity (total reactant count) of the reaction."""
        return self._reactants.total()

    def is_unimolecular(self) -> bool:
        """True if the reaction has exactly one reactant molecule."""
        return self.order() == 1

    def is_bimolecular(self) -> bool:
        """True if the reaction has exactly two reactant molecules."""
        return self.order() == 2

    def consumes(self, sp: Species) -> bool:
        """True if ``sp`` appears as a reactant (regardless of net change)."""
        return self._reactants.count(sp) > 0

    def produces(self, sp: Species) -> bool:
        """True if ``sp`` appears as a product (regardless of net change)."""
        return self._products.count(sp) > 0

    def is_catalyst(self, sp: Species) -> bool:
        """True if ``sp`` appears on both sides with equal coefficient."""
        r = self._reactants.count(sp)
        return r > 0 and r == self._products.count(sp)

    # -- semantics -----------------------------------------------------------

    def applicable(self, config: Configuration) -> bool:
        """True if the reaction can fire in ``config`` (all reactants present)."""
        return all(config[sp] >= count for sp, count in self._reactants.counts.items())

    def apply(self, config: Configuration) -> Configuration:
        """Fire the reaction once: return ``config - reactants + products``.

        Raises ``ValueError`` if the reaction is not applicable.
        """
        if not self.applicable(config):
            raise ValueError(f"reaction {self} is not applicable to {config}")
        counts = config.counts()
        for sp, count in self._reactants.counts.items():
            counts[sp] = counts.get(sp, 0) - count
        for sp, count in self._products.counts.items():
            counts[sp] = counts.get(sp, 0) + count
        return Configuration({sp: c for sp, c in counts.items() if c > 0})

    def propensity(self, config: Configuration) -> float:
        """Mass-action propensity of this reaction in ``config``.

        Uses the standard stochastic mass-action form: the rate constant times
        the number of distinct reactant multisets, i.e. a product of binomial
        coefficients ``C(count, coefficient)`` over the reactant species.
        """
        total = self.rate
        for sp, count in self._reactants.counts.items():
            available = config[sp]
            if available < count:
                return 0.0
            total *= math.comb(available, count)
        return total

    # -- transformations -----------------------------------------------------

    def renamed(self, mapping: Mapping[Species, Species]) -> "Reaction":
        """Return a copy with species renamed according to ``mapping``.

        Species absent from the mapping are left unchanged.  The mapping may
        merge species (used when identifying an upstream output with a
        downstream input during concatenation).
        """
        def rename_side(expr: Expression) -> Dict[Species, int]:
            out: Dict[Species, int] = {}
            for sp, count in expr.counts.items():
                new_sp = mapping.get(sp, sp)
                out[new_sp] = out.get(new_sp, 0) + count
            return out

        return Reaction(
            Expression(rename_side(self._reactants)),
            Expression(rename_side(self._products)),
            rate=self.rate,
            name=self.name,
        )

    def with_rate(self, rate: float) -> "Reaction":
        """Return a copy of this reaction with a different rate constant."""
        return Reaction(self._reactants, self._products, rate=rate, name=self.name)

    def reversed(self) -> "Reaction":
        """Return the reverse reaction (products become reactants)."""
        return Reaction(self._products, self._reactants, rate=self.rate, name=self.name)

    # -- comparison / display ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Reaction):
            return NotImplemented
        return self._reactants == other._reactants and self._products == other._products

    def __hash__(self) -> int:
        return hash((self._reactants, self._products))

    def __str__(self) -> str:
        return f"{self._reactants} -> {self._products}"

    def __repr__(self) -> str:
        label = f", name={self.name!r}" if self.name else ""
        return f"Reaction({self._reactants!s} -> {self._products!s}, rate={self.rate}{label})"


_TERM_RE = re.compile(r"^\s*(\d*)\s*([A-Za-z_][A-Za-z0-9_']*)\s*$")


def _parse_side(text: str) -> Expression:
    """Parse one side of a reaction string into an :class:`Expression`."""
    text = text.strip()
    if text in ("", "0", "(nothing)", "∅", "null"):
        return Expression({})
    counts: Dict[Species, int] = {}
    for term in text.split("+"):
        match = _TERM_RE.match(term)
        if not match:
            raise ValueError(f"cannot parse reaction term {term!r}")
        coefficient = int(match.group(1)) if match.group(1) else 1
        sp = Species(match.group(2))
        counts[sp] = counts.get(sp, 0) + coefficient
    return Expression(counts)


def parse_reaction(text: str, rate: float = 1.0, name: str = "") -> Reaction:
    """Parse a reaction from a string such as ``"A + 2B -> C"``.

    The arrow may be written ``->`` or ``→``.  The empty side may be written
    ``0``, ``null``, or ``∅``.
    """
    normalized = text.replace("→", "->")
    if "->" not in normalized:
        raise ValueError(f"reaction string must contain '->': {text!r}")
    left, right = normalized.split("->", 1)
    return Reaction(_parse_side(left), _parse_side(right), rate=rate, name=name)
