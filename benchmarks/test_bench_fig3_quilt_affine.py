"""Figure 3 benchmark: quilt-affine functions and their Lemma 6.1 CRNs.

Regenerates Fig. 3a (``⌊3x/2⌋``) and Fig. 3b (the 2D bumpy quilt
``(1,2)·x + B(x mod 3)``): the value tables the figures plot, the
gradient/period/offset decomposition, and the size and correctness of the
Lemma 6.1 construction (1 + d·p^d reactions).
"""

import pytest

from repro.core.construction_quilt import build_quilt_affine_crn
from repro.functions.catalog import floor_3x_over_2_spec, quilt_2d_fig3b_spec
from repro.verify.stable import verify_stable_computation


def test_fig3a_floor_function(benchmark):
    spec = floor_3x_over_2_spec()
    quilt = spec.eventually_min.pieces[0]

    def run():
        crn = build_quilt_affine_crn(quilt)
        return crn, verify_stable_computation(crn, spec.func, inputs=[(x,) for x in range(6)])

    crn, report = benchmark(run)
    assert report.passed
    print(f"\n[Fig. 3a] floor(3x/2) = (3/2)x + B(x mod 2), B(1) = {quilt.offset((1,))}")
    print(f"  values 0..9: {[spec.func((x,)) for x in range(10)]}")
    print(f"  Lemma 6.1 CRN size: {crn.size()}")


def test_fig3b_2d_quilt(benchmark):
    spec = quilt_2d_fig3b_spec()
    quilt = spec.eventually_min.pieces[0]

    def run():
        crn = build_quilt_affine_crn(quilt)
        report = verify_stable_computation(
            crn, spec.func, inputs=[(0, 0), (1, 2), (2, 2), (3, 1)], exhaustive_limit=4_000, trials=3
        )
        return crn, report

    crn, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.passed
    print(f"\n[Fig. 3b] g(x) = (1,2)·x + B(x mod 3), nonzero offsets on classes (1,2),(2,2),(2,1)")
    print("  value patch (x2 = 3 down to 0, x1 = 0..5):")
    for x2 in range(3, -1, -1):
        print("   " + " ".join(f"{spec.func((x1, x2)):3d}" for x1 in range(6)))
    expected_reactions = 1 + 2 * quilt.period ** 2
    assert len(crn.reactions) == expected_reactions
    print(f"  Lemma 6.1 CRN: {crn.size()} (theory: 1 + d·p^d = {expected_reactions} reactions)")
