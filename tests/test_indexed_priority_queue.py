"""IndexedPriorityQueue: heap + position-map invariants vs a brute-force model.

The queue is the scheduling core of the Gibson–Bruck next-reaction engine
(``engine="nrm"``): it must deliver the true minimum putative firing time
after any interleaving of inserts, key updates (both directions), and pops.
The property tests drive random operation sequences against a dict-backed
model and check the structural invariants after every single operation.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import IndexedPriorityQueue


def check_invariants(queue):
    """The structural contract: heap order plus a consistent position map."""
    heap, keys, pos = queue._heap, queue._keys, queue._pos
    # Position map: pos[item] == slot for live items, -1 for popped ones.
    for slot, item in enumerate(heap):
        assert pos[item] == slot, f"pos[{item}]={pos[item]} but heap[{slot}]={item}"
    live = sum(1 for p in pos if p >= 0)
    assert live == len(heap), "position map counts a different live set than the heap"
    # Heap order: every parent key <= both child keys.
    for slot in range(1, len(heap)):
        parent = (slot - 1) >> 1
        assert keys[heap[parent]] <= keys[heap[slot]], (
            f"heap violation at slot {slot}: parent key {keys[heap[parent]]} > "
            f"child key {keys[heap[slot]]}"
        )


finite_keys = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
keys_with_inf = st.one_of(finite_keys, st.just(math.inf))


class TestBasics:
    def test_construction_heapifies(self):
        queue = IndexedPriorityQueue([5.0, 1.0, 3.0, 0.5, 2.0])
        check_invariants(queue)
        assert len(queue) == 5
        assert queue.top() == (3, 0.5)
        assert queue.key(0) == 5.0

    def test_empty_queue(self):
        queue = IndexedPriorityQueue()
        assert len(queue) == 0
        assert not queue
        assert 0 not in queue
        with pytest.raises(IndexError):
            queue.top()
        with pytest.raises(IndexError):
            queue.pop()

    def test_push_assigns_dense_ids(self):
        queue = IndexedPriorityQueue([2.0])
        assert queue.push(1.0) == 1
        assert queue.push(3.0) == 2
        assert queue.top() == (1, 1.0)
        check_invariants(queue)

    def test_pop_retires_the_item_id(self):
        queue = IndexedPriorityQueue([2.0, 1.0])
        assert queue.pop() == (1, 1.0)
        assert 1 not in queue and 0 in queue
        with pytest.raises(KeyError):
            queue.update(1, 0.0)
        with pytest.raises(KeyError):
            queue.key(1)
        # Ids are never reused: the next push continues the sequence.
        assert queue.push(0.5) == 2
        check_invariants(queue)

    def test_update_both_directions(self):
        queue = IndexedPriorityQueue([1.0, 2.0, 3.0, 4.0])
        queue.update(3, 0.5)  # decrease-key: new minimum
        check_invariants(queue)
        assert queue.top() == (3, 0.5)
        queue.update(3, 10.0)  # increase-key: sinks back down
        check_invariants(queue)
        assert queue.top() == (0, 1.0)

    def test_inf_keys_park_at_the_bottom(self):
        queue = IndexedPriorityQueue([math.inf, 2.0, math.inf])
        assert queue.top() == (1, 2.0)
        queue.update(1, math.inf)
        check_invariants(queue)
        assert queue.top()[1] == math.inf  # all parked: NRM reads this as silent
        queue.update(2, 0.25)  # re-enabled reaction
        assert queue.top() == (2, 0.25)

    def test_unknown_item_raises(self):
        queue = IndexedPriorityQueue([1.0])
        for bad in (-1, 5):
            with pytest.raises(KeyError):
                queue.update(bad, 0.0)
            with pytest.raises(KeyError):
                queue.key(bad)


class TestPropertyBased:
    """Random operation sequences vs the obvious dict model."""

    @given(
        st.lists(keys_with_inf, min_size=0, max_size=12),
        st.lists(
            st.tuples(st.sampled_from(["push", "pop", "update"]), st.integers(0, 2**32), keys_with_inf),
            max_size=60,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_against_brute_force_model(self, initial, operations):
        queue = IndexedPriorityQueue(initial)
        model = dict(enumerate(initial))
        check_invariants(queue)
        for op, selector, key in operations:
            if op == "push":
                item = queue.push(key)
                assert item not in model, "push reused a live/retired id"
                model[item] = key
            elif op == "pop":
                if not model:
                    with pytest.raises(IndexError):
                        queue.pop()
                    continue
                item, popped_key = queue.pop()
                assert popped_key == model[item]
                assert popped_key == min(model.values())
                del model[item]
            else:  # update a pseudo-random live item
                if not model:
                    continue
                live = sorted(model)
                item = live[selector % len(live)]
                queue.update(item, key)
                model[item] = key
            check_invariants(queue)
            # The queryable state matches the model exactly.
            assert len(queue) == len(model)
            for item, want in model.items():
                assert item in queue
                assert queue.key(item) == want
            if model:
                top_item, top_key = queue.top()
                assert top_key == min(model.values())
                assert model[top_item] == top_key

    @given(st.lists(finite_keys, min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_heapsort_drains_in_sorted_order(self, keys):
        queue = IndexedPriorityQueue(keys)
        drained = []
        while queue:
            check_invariants(queue)
            drained.append(queue.pop()[1])
        assert drained == sorted(keys)

    @given(
        st.lists(finite_keys, min_size=2, max_size=16),
        st.lists(st.tuples(st.integers(0, 2**32), finite_keys), min_size=1, max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_update_storms_preserve_the_minimum(self, keys, updates):
        # The NRM access pattern: a fixed item set, keys rewritten in place.
        queue = IndexedPriorityQueue(keys)
        current = list(keys)
        for selector, key in updates:
            item = selector % len(current)
            queue.update(item, key)
            current[item] = key
            check_invariants(queue)
            top_item, top_key = queue.top()
            assert top_key == min(current)
            assert current[top_item] == top_key
