"""Stoichiometric analysis of CRNs: matrices, conservation laws, structural audits.

These are standard reaction-network analyses used by the tests and examples to
sanity-check constructions:

* the stoichiometry matrix ``M`` (species × reactions, net change per firing);
* conservation laws (nonnegative-integer left null vectors of ``M``), e.g. the
  Theorem 3.1 construction conserves the total leader-state count at 1;
* the species production/consumption graph and dead-species / dead-reaction
  detection (a reaction that can never fire from any valid initial
  configuration indicates a wiring bug in a composed construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Set, Tuple

from repro.crn.network import CRN
from repro.crn.species import Species
from repro.geometry.linalg import rational_nullspace


@dataclass
class StoichiometricMatrix:
    """The net-change matrix of a CRN, with named rows (species) and columns (reactions)."""

    species: Tuple[Species, ...]
    matrix: Tuple[Tuple[int, ...], ...]
    """``matrix[i][j]`` is the net change of ``species[i]`` when reaction ``j`` fires."""

    def row(self, sp: Species) -> Tuple[int, ...]:
        """The net-change row of one species across all reactions."""
        return self.matrix[self.species.index(sp)]

    def column(self, reaction_index: int) -> Tuple[int, ...]:
        """The net-change column of one reaction across all species."""
        return tuple(row[reaction_index] for row in self.matrix)

    @property
    def shape(self) -> Tuple[int, int]:
        """(number of species, number of reactions)."""
        return (len(self.matrix), len(self.matrix[0]) if self.matrix else 0)


def stoichiometric_matrix(crn: CRN) -> StoichiometricMatrix:
    """Build the stoichiometric (net-change) matrix of ``crn``."""
    species = crn.species()
    rows = []
    for sp in species:
        rows.append(tuple(rxn.net_change(sp) for rxn in crn.reactions))
    return StoichiometricMatrix(species=species, matrix=tuple(rows))


def conservation_laws(crn: CRN) -> List[Dict[Species, Fraction]]:
    """A basis of the conservation laws of ``crn``.

    A conservation law is a vector ``c`` over species with ``c · M = 0``: the
    weighted total ``Σ c(S)·count(S)`` is invariant under every reaction.  The
    returned basis spans the left null space of the stoichiometry matrix; the
    basis vectors are rational and not necessarily nonnegative.
    """
    matrix = stoichiometric_matrix(crn)
    species = matrix.species
    reactions = matrix.shape[1]
    if reactions == 0:
        return [
            {sp: Fraction(1) if sp == target else Fraction(0) for sp in species}
            for target in species
        ]
    # c · M = 0  <=>  M^T c = 0: the null space of the transposed matrix.
    transposed = [
        [Fraction(matrix.matrix[i][j]) for i in range(len(species))] for j in range(reactions)
    ]
    basis = rational_nullspace(transposed, len(species))
    return [dict(zip(species, vector)) for vector in basis]


def conserved_quantity(law: Dict[Species, Fraction], counts: Dict[Species, int]) -> Fraction:
    """Evaluate a conservation law on a configuration-like count dictionary."""
    return sum((law.get(sp, Fraction(0)) * count for sp, count in counts.items()), start=Fraction(0))


def leader_state_conservation(crn: CRN, leader_states: Sequence[Species]) -> bool:
    """True if the total count of the given species is conserved by every reaction.

    Used to check the leader-state invariant of the Theorem 3.1 / Lemma 6.1
    constructions: exactly one of the leader-state species is present at any
    time (their total never changes once it is 1).
    """
    states = set(leader_states)
    for rxn in crn.reactions:
        delta = sum(rxn.net_change(sp) for sp in states)
        if delta != 0:
            return False
    return True


def producible_species(crn: CRN) -> Set[Species]:
    """Species that can ever be present starting from some valid initial configuration.

    Computed as a fixed point: the inputs and the leader are present initially;
    a reaction whose reactants are all producible makes its products producible.
    """
    available: Set[Species] = set(crn.input_species)
    if crn.leader is not None:
        available.add(crn.leader)
    changed = True
    while changed:
        changed = False
        for rxn in crn.reactions:
            if all(sp in available for sp in rxn.reactants.species()):
                for sp in rxn.products.species():
                    if sp not in available:
                        available.add(sp)
                        changed = True
    return available


def dead_reactions(crn: CRN) -> List:
    """Reactions that can never fire because some reactant is never producible.

    A nonempty result almost always indicates a wiring bug in a composed
    construction (e.g. a module input that was never connected to a fan-out).
    """
    available = producible_species(crn)
    return [
        rxn for rxn in crn.reactions
        if any(sp not in available for sp in rxn.reactants.species())
    ]


def unproducible_species(crn: CRN) -> Set[Species]:
    """Species mentioned by the CRN that can never be present (excluding unused declarations)."""
    available = producible_species(crn)
    return {sp for sp in crn.species() if sp not in available}


def species_dependency_graph(crn: CRN):
    """A directed graph with an edge ``A -> B`` when some reaction consumes A and produces B.

    Returned as a :class:`networkx.DiGraph`; useful for visualizing the
    feed-forward structure of composed constructions.
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(crn.species())
    for rxn in crn.reactions:
        for reactant in rxn.reactants.species():
            for product in rxn.products.species():
                if reactant != product:
                    graph.add_edge(reactant, product)
    return graph


def is_feed_forward(crn: CRN) -> bool:
    """True if the species dependency graph is acyclic (a feed-forward pipeline).

    Output-oblivious constructions built by concatenation are typically
    feed-forward at the module level, though individual modules (e.g. the
    leader-state cycles of Lemma 6.1) may contain cycles — this predicate is a
    coarse structural indicator, not a correctness condition.
    """
    import networkx as nx

    return nx.is_directed_acyclic_graph(species_dependency_graph(crn))
