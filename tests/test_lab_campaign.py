"""Campaign declaration and expansion: grids, cells, seeds, engine resolution."""

import pytest

from repro.api.config import RunConfig
from repro.lab.campaign import (
    Campaign,
    SweepGrid,
    register_spec_factory,
    resolve_engine,
    resolve_spec,
    spec_factory_names,
)
from repro.core.specs import FunctionSpec


class TestSweepGrid:
    def test_parse_single_axis_replicates_to_dimension(self):
        grid = SweepGrid.parse("0:3", dimension=2)
        assert grid.dimension == 2
        assert grid.points() == tuple(
            (a, b) for a in range(3) for b in range(3)
        )

    def test_parse_explicit_axes_and_values(self):
        grid = SweepGrid.parse("0:2,5;9")
        assert grid.axes == ((0, 1), (5, 9))
        assert len(grid) == 4

    def test_parse_mixed_range_and_value_in_one_axis(self):
        assert SweepGrid.parse("0:3;7").axes == ((0, 1, 2, 7),)

    def test_from_ranges(self):
        grid = SweepGrid.from_ranges((0, 2), (1, 3))
        assert grid.points() == ((0, 1), (0, 2), (1, 1), (1, 2))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(((),))


class TestSpecRegistry:
    def test_builtin_catalog_registered(self):
        names = spec_factory_names()
        for expected in ("minimum", "add", "double", "minimum_3d", "fig7"):
            assert expected in names

    def test_resolve_unknown_spec_lists_known(self):
        with pytest.raises(ValueError, match="unknown spec"):
            resolve_spec("no-such-spec")

    def test_duplicate_registration_requires_replace(self):
        register_spec_factory(
            "lab-test-dup", lambda: resolve_spec("minimum"), replace=True
        )
        with pytest.raises(ValueError, match="already registered"):
            register_spec_factory("lab-test-dup", lambda: resolve_spec("minimum"))

    def test_resolve_memoizes_per_process(self):
        assert resolve_spec("minimum") is resolve_spec("minimum")


class TestEngineResolution:
    def test_explicit_selector_passes_through(self):
        assert resolve_engine("python", (10**6, 10**6)) == "python"

    def test_auto_small_population_prefers_reference_engine(self):
        assert resolve_engine("auto", (3, 4)) == "python"

    def test_auto_with_allow_approximate_picks_tau_vec_at_scale(self):
        from repro.api.config import RunConfig

        # With the opt-in, populations past the approximate engines'
        # min_recommended_population floor resolve to the batch-capable
        # approximate engine.
        config = RunConfig(allow_approximate=True)
        assert resolve_engine("auto", (50_000, 50_000), config) == "tau-vec"
        assert resolve_engine("auto", (10_000,), config) == "tau-vec"

    def test_auto_without_opt_in_stays_exact(self):
        from repro.api.config import RunConfig

        # The default config never resolves "auto" to an approximate engine,
        # with or without a config object.
        assert resolve_engine("auto", (50_000, 50_000), RunConfig()) == "vectorized"
        assert resolve_engine("auto", (50_000, 50_000)) == "vectorized"

    def test_auto_with_opt_in_small_population_stays_exact(self):
        from repro.api.config import RunConfig

        # Under the floor, leaping degrades to exact stepping, so the opt-in
        # changes nothing and the exact resolution wins.
        config = RunConfig(allow_approximate=True)
        assert resolve_engine("auto", (3, 4), config) == "python"
        assert resolve_engine("auto", (9_999,), config) == "python"

    def test_explicit_selector_ignores_allow_approximate(self):
        from repro.api.config import RunConfig

        config = RunConfig(allow_approximate=True)
        assert resolve_engine("python", (10**6, 10**6), config) == "python"
        assert resolve_engine("nrm", (50_000, 50_000), config) == "nrm"

    def test_auto_large_population_picks_vectorized(self):
        # beyond the python engine's max_recommended_population of 20_000
        # (raised from 2_000 when the scalar kernel replaced the dict loops)
        assert resolve_engine("auto", (50_000, 50_000)) == "vectorized"


class TestCampaignExpansion:
    def campaign(self, **overrides):
        kwargs = dict(
            name="t",
            specs=["minimum"],
            inputs=SweepGrid.parse("0:3", dimension=2),
            engines=("python",),
            configs=(RunConfig(trials=2),),
            seed=5,
        )
        kwargs.update(overrides)
        return Campaign(**kwargs)

    def test_auto_resolution_is_per_config_variant(self):
        # "auto" is resolved inside the config-variant loop, so one campaign
        # can mix an exact baseline with an approximate opt-in variant and
        # each cell records the engine its own config resolved to.
        campaign = self.campaign(
            inputs=((30_000, 30_000),),
            engines=("auto",),
            configs=(
                RunConfig(trials=2),
                RunConfig(trials=2, allow_approximate=True),
            ),
        )
        engines = {
            cell.config.allow_approximate: cell.engine for cell in campaign.expand()
        }
        assert engines == {False: "vectorized", True: "tau-vec"}

    def test_grid_is_normalized_to_points(self):
        campaign = self.campaign()
        assert campaign.inputs == SweepGrid.parse("0:3", dimension=2).points()

    def test_cell_count_is_product_of_axes(self):
        campaign = self.campaign(engines=("python", "vectorized"))
        assert len(campaign.expand()) == 9 * 2

    def test_expansion_is_deterministic(self):
        first = self.campaign().expand()
        second = self.campaign().expand()
        assert [(c.cell_id, c.config.seed) for c in first] == [
            (c.cell_id, c.config.seed) for c in second
        ]

    def test_cells_get_distinct_derived_seeds(self):
        cells = self.campaign().expand()
        seeds = [cell.config.seed for cell in cells]
        assert all(seed is not None for seed in seeds)
        assert len(set(seeds)) == len(seeds)

    def test_cell_seed_independent_of_other_axes(self):
        # the same descriptor keeps the same seed when the campaign grows
        small = {(c.spec, c.input, c.engine): c.config.seed for c in self.campaign().expand()}
        grown = self.campaign(engines=("python", "vectorized")).expand()
        for cell in grown:
            key = (cell.spec, cell.input, cell.engine)
            if key in small:
                assert small[key] == cell.config.seed

    def test_different_master_seed_changes_cell_seeds_and_ids(self):
        a = self.campaign(seed=5).expand()
        b = self.campaign(seed=6).expand()
        assert [c.cell_id for c in a] != [c.cell_id for c in b]

    def test_unseeded_campaign_is_uncacheable(self):
        cells = self.campaign(seed=None, configs=(RunConfig(trials=2),)).expand()
        assert all(cell.config.seed is None for cell in cells)
        assert not any(cell.cacheable for cell in cells)

    def test_dimension_mismatch_raises(self):
        campaign = self.campaign(inputs=[(1, 2, 3)])
        with pytest.raises(ValueError, match="coordinates"):
            campaign.expand()

    def test_duplicate_config_variants_collapse(self):
        campaign = self.campaign(configs=(RunConfig(trials=2), RunConfig(trials=2)))
        assert len(campaign.expand()) == 9

    def test_function_spec_instance_auto_registers(self):
        spec = FunctionSpec(name="lab-test-inline", dimension=1, func=lambda x: x[0])
        campaign = Campaign(
            name="t", specs=[spec], inputs=[(2,)], engines=("python",), seed=1
        )
        cells = campaign.expand()
        assert cells[0].spec == "lab-test-inline"
        assert resolve_spec("lab-test-inline") is spec
        # the same instance can be reused; a *different* spec under a taken
        # name is rejected rather than silently rebinding it process-wide
        Campaign(name="t2", specs=[spec], inputs=[(2,)], engines=("python",), seed=1)
        impostor = FunctionSpec(name="minimum", dimension=2, func=lambda x: 0)
        with pytest.raises(ValueError, match="already registered"):
            Campaign(name="t3", specs=[impostor], inputs=[(1, 1)], engines=("python",), seed=1)

    def test_empty_axes_rejected(self):
        for field in ("specs", "inputs", "engines", "configs"):
            with pytest.raises(ValueError):
                self.campaign(**{field: ()})

    def test_manifest_round_trip(self):
        campaign = self.campaign(engines=("python", "auto"))
        rebuilt = Campaign.from_dict(campaign.to_dict())
        assert rebuilt.to_dict() == campaign.to_dict()
        assert [c.cell_id for c in rebuilt.expand()] == [
            c.cell_id for c in campaign.expand()
        ]

    def test_manifest_save_load(self, tmp_path):
        path = tmp_path / "manifest.json"
        campaign = self.campaign()
        campaign.save(str(path))
        assert Campaign.load(str(path)).to_dict() == campaign.to_dict()

    def test_campaign_name_not_part_of_cell_identity(self):
        a = self.campaign(name="first").expand()
        b = self.campaign(name="second").expand()
        assert [c.cell_id for c in a] == [c.cell_id for c in b]
