"""Theorem 8.2 benchmark: discrete scalings vs. continuous CRN computation.

For each catalog / paper-example function that is obliviously-computable, the
benchmark compares three quantities on a grid of real-valued points:

* the numerical ∞-scaling estimate ``f(⌊cz⌋)/c`` for large ``c``;
* the exact limit ``min_k ∇g_k · z`` read off the eventually-min representation;
* the stable output of the continuous output-oblivious CRN built from the same
  gradients (Section 8 / [9]).

All three agree (up to the 1/c discretization error), which is the content of
Theorem 8.2.
"""

from fractions import Fraction

import pytest

from repro.continuous.construction import build_min_of_linear_continuous_crn
from repro.continuous.functions import MinOfLinear
from repro.core.scaling import infinity_scaling, scaling_of_eventually_min
from repro.functions.catalog import add_spec, double_spec, floor_3x_over_2_spec, minimum_spec
from repro.functions.paper_examples import fig4a_style_spec, fig7_spec


CASES = [double_spec, add_spec, minimum_spec, floor_3x_over_2_spec, fig7_spec, fig4a_style_spec]


@pytest.mark.parametrize("spec_factory", CASES, ids=lambda f: f.__name__)
def test_scaling_correspondence(benchmark, spec_factory):
    spec = spec_factory()
    dimension = spec.dimension
    probes = [(1.0,) * dimension, tuple(0.5 + 0.5 * i for i in range(1, dimension + 1))]

    def run():
        gradients = [piece.gradient for piece in spec.eventually_min.pieces]
        continuous = build_min_of_linear_continuous_crn(MinOfLinear.from_gradients(gradients))
        rows = []
        for point in probes:
            numeric = infinity_scaling(spec.func, point, scale=3_000)
            exact = float(scaling_of_eventually_min(spec.eventually_min, [Fraction(v) for v in point]))
            lp = continuous.max_output(point)
            rows.append((point, numeric, exact, lp))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n[Thm 8.2] {spec.name}: z -> (numeric scaling, exact limit, continuous CRN output)")
    for point, numeric, exact, lp in rows:
        print(f"  {point}: {numeric:.4f}  {exact:.4f}  {lp:.4f}")
        assert numeric == pytest.approx(exact, abs=3e-2)
        assert lp == pytest.approx(exact, abs=1e-6)
