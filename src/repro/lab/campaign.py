"""Declarative experiment campaigns and their run/resume lifecycle.

A :class:`Campaign` names *what* to compute — specs x inputs x engines x
config variants — and :func:`run_campaign` turns it into artifacts on disk:

1. **expand**: the grid is flattened into a deterministic, seeded list of
   :class:`Cell` s.  Expansion is a pure function of the campaign, so the same
   campaign always yields the same cells (ids, seeds, order) — the property
   resume and caching both rest on.
2. **skip**: cells whose ids already appear in the campaign's JSONL store are
   done (a previous run, possibly interrupted, produced them).
3. **cache**: remaining seeded cells are looked up in the content-addressed
   :class:`~repro.lab.cache.ResultCache`; hits are replayed into the store
   without simulating.
4. **execute**: misses go to an executor (:mod:`repro.lab.executor`) — a
   worker pool or the serial fallback — and every result (including error
   rows) is appended to the store as it arrives.
5. **aggregate**: all rows are summarized (:mod:`repro.lab.aggregate`) and the
   summary is written next to the store.

Specs travel to worker processes *by name*: a module-level factory registry
maps names to zero-argument constructors, pre-populated with the package
catalog.  Custom factories registered at runtime reach workers on platforms
that fork (Linux); under a spawn start method only the built-in catalog is
visible to workers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.config import RunConfig
from repro.core.specs import FunctionSpec
from repro.lab.aggregate import CampaignSummary, summarize
from repro.lab.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cell_cache_key,
    spec_fingerprint,
)
from repro.lab.store import CellResult, ResultStore
from repro.obs.provenance import run_manifest
from repro.obs.trace import (
    JsonlTraceSink,
    Tracer,
    get_tracer,
    install_tracer,
    merge_trace_files,
)
from repro.sim.registry import registered_engines

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
SUMMARY_NAME = "summary.json"
TRACE_NAME = "trace.jsonl"
PROVENANCE_NAME = "provenance.json"


# ---------------------------------------------------------------------------
# Spec factories: names -> constructors, so cells are picklable and portable
# ---------------------------------------------------------------------------

_SPEC_FACTORIES: Dict[str, Callable[[], FunctionSpec]] = {}
_SPEC_INSTANCES: Dict[str, FunctionSpec] = {}


def register_spec_factory(
    name: str, factory: Callable[[], FunctionSpec], replace: bool = False
) -> None:
    """Register a zero-argument spec constructor under ``name``.

    Campaign cells reference specs by these names (a callable cannot ride a
    pickle to a worker process).  ``replace=True`` overwrites — note the cache
    is content-addressed via :func:`~repro.lab.cache.spec_fingerprint`, so
    re-binding a name to a different function can never resurrect the old
    function's cached results.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"spec name must be a nonempty string, got {name!r}")
    if name in _SPEC_FACTORIES and not replace:
        raise ValueError(
            f"spec factory {name!r} is already registered; pass replace=True to overwrite"
        )
    _SPEC_FACTORIES[name] = factory
    _SPEC_INSTANCES.pop(name, None)


def spec_factory_names() -> Tuple[str, ...]:
    """All registered spec names, sorted."""
    return tuple(sorted(_SPEC_FACTORIES))


def resolve_spec(name: str) -> FunctionSpec:
    """Instantiate (once per process) the spec registered under ``name``."""
    try:
        spec = _SPEC_INSTANCES[name]
    except KeyError:
        try:
            factory = _SPEC_FACTORIES[name]
        except KeyError:
            known = ", ".join(repr(n) for n in spec_factory_names()) or "(none)"
            raise ValueError(
                f"unknown spec {name!r}; registered specs: {known}"
            ) from None
        spec = _SPEC_INSTANCES[name] = factory()
    return spec


def _register_builtin_specs() -> None:
    from repro.functions import catalog, extended, paper_examples

    builtins: Dict[str, Callable[[], FunctionSpec]] = {
        "double": catalog.double_spec,
        "identity": catalog.identity_spec,
        "add": catalog.add_spec,
        "minimum": catalog.minimum_spec,
        "maximum": catalog.maximum_spec,
        "min_one": catalog.min_one_spec,
        "floor_3x_over_2": catalog.floor_3x_over_2_spec,
        "quilt_2d_fig3b": catalog.quilt_2d_fig3b_spec,
        "threshold_capped": catalog.threshold_capped_spec,
        "minimum_3d": extended.minimum_3d_spec,
        "weighted_floor": extended.weighted_floor_spec,
        "capped_sum": extended.capped_sum_spec,
        "tropical_polynomial": extended.tropical_polynomial_spec,
        "min3_with_offset": extended.min3_with_offset_spec,
        "fig7": paper_examples.fig7_spec,
        "eq2_counterexample": paper_examples.eq2_counterexample_spec,
        "fig4a_style": paper_examples.fig4a_style_spec,
        "interior_min_plus_one": paper_examples.interior_min_plus_one_spec,
    }
    for name, factory in builtins.items():
        register_spec_factory(name, factory, replace=True)


_register_builtin_specs()


# ---------------------------------------------------------------------------
# Engine selection from registry capability metadata
# ---------------------------------------------------------------------------


def resolve_engine(
    selector: str, x: Sequence[int], config: Optional[RunConfig] = None
) -> str:
    """Resolve an engine selector for one input, honouring ``"auto"``.

    ``"auto"`` consults the engine registry's capability metadata: among
    fair-scheduler-capable engines (in registration order, so the scalar
    reference engine is preferred while it is practical), pick the first whose
    ``max_recommended_population`` admits this input's population.  In the
    default registry that means ``python`` for small inputs and
    ``vectorized`` beyond ~2000 molecules.

    When the config opts in with ``allow_approximate=True``, huge populations
    resolve to an *approximate* engine first: among approximate engines whose
    ``min_recommended_population`` floor (and ``max_recommended_population``
    ceiling, if any) admits the population, batch-capable ones are preferred
    — in the default registry that picks ``tau-vec`` (falling back to
    ``tau``) at populations of 10^4 and above, while small inputs still get
    the exact resolution.  Explicit selectors are returned unchanged in all
    cases; the opt-in only affects ``"auto"``.
    """
    if selector != "auto":
        return selector
    population = sum(int(v) for v in x)
    if config is not None and config.allow_approximate:
        admitted = [
            info
            for info in registered_engines()
            if info.approximate
            and (info.min_recommended_population or 0) <= population
            and (
                info.max_recommended_population is None
                or population <= info.max_recommended_population
            )
        ]
        if admitted:
            batch_native = [info for info in admitted if info.batch_capable]
            return (batch_native[0] if batch_native else admitted[0]).name
    fair_capable = [info for info in registered_engines() if info.supports_fair]
    for info in fair_capable:
        bound = info.max_recommended_population
        if bound is None or population <= bound:
            return info.name
    return fair_capable[0].name if fair_capable else "python"


# ---------------------------------------------------------------------------
# Grids, cells, campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepGrid:
    """A cartesian input grid: one tuple of values per input dimension."""

    axes: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "axes", tuple(tuple(int(v) for v in axis) for axis in self.axes)
        )
        if not self.axes or any(not axis for axis in self.axes):
            raise ValueError("SweepGrid needs at least one nonempty axis per dimension")

    @staticmethod
    def from_ranges(*ranges: Tuple[int, int]) -> "SweepGrid":
        """Half-open ``(lo, hi)`` ranges, one per dimension."""
        return SweepGrid(tuple(tuple(range(lo, hi)) for lo, hi in ranges))

    @staticmethod
    def parse(text: str, dimension: Optional[int] = None) -> "SweepGrid":
        """Parse ``"0:5"`` / ``"0:5,0:3"`` / ``"1,2,5"`` axis syntax.

        Comma separates axes; each axis is a half-open ``lo:hi`` range or a
        single value.  A single axis is replicated to ``dimension`` when one
        is given (so ``"0:5"`` means the square/cube grid for any spec).
        ``";"`` separates values *within* an axis: ``"0:3;7"`` is
        ``(0, 1, 2, 7)``.
        """
        axes: List[Tuple[int, ...]] = []
        for axis_text in text.split(","):
            values: List[int] = []
            for part in axis_text.split(";"):
                part = part.strip()
                if ":" in part:
                    lo, hi = part.split(":", 1)
                    values.extend(range(int(lo), int(hi)))
                elif part:
                    values.append(int(part))
            axes.append(tuple(values))
        if dimension is not None and len(axes) == 1 and dimension > 1:
            axes = axes * dimension
        return SweepGrid(tuple(axes))

    @property
    def dimension(self) -> int:
        return len(self.axes)

    def points(self) -> Tuple[Tuple[int, ...], ...]:
        """All grid points, in row-major (itertools.product) order."""
        return tuple(itertools.product(*self.axes))

    def __len__(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis)
        return size


@dataclass(frozen=True)
class Cell:
    """One fully-resolved unit of campaign work (picklable, content-addressed).

    ``config`` carries the cell's concrete engine and derived seed;
    ``cell_id`` is a 16-hex-digit content hash of the descriptor, and
    :meth:`cache_key` extends it with the code-version salt for the
    result cache.
    """

    index: int
    spec: str
    strategy: str
    input: Tuple[int, ...]
    engine: str
    config: RunConfig
    spec_fingerprint: str
    cell_id: str

    @property
    def cacheable(self) -> bool:
        """Only seeded cells are deterministic, hence content-addressable."""
        return self.config.seed is not None

    def cache_key(self) -> str:
        return cell_cache_key(
            self.spec_fingerprint,
            self.strategy,
            self.input,
            self.engine,
            self.config.cache_key(),
        )

    def __repr__(self) -> str:
        return (
            f"Cell(#{self.index} {self.spec}{list(self.input)} "
            f"engine={self.engine} id={self.cell_id})"
        )


def _derive_cell_seed(master_seed: int, descriptor_blob: str) -> int:
    digest = hashlib.sha256(
        f"{master_seed}|{descriptor_blob}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


SpecLike = Union[str, Tuple[str, str], FunctionSpec]


def _normalize_spec_entry(entry: SpecLike, default_strategy: str) -> Tuple[str, str]:
    if isinstance(entry, FunctionSpec):
        if entry.name in _SPEC_FACTORIES:
            # never silently rebind a registered name (e.g. a catalog spec)
            # to a different object — that would leak into every later
            # resolve_spec() in the process
            if resolve_spec(entry.name) is not entry:
                raise ValueError(
                    f"spec name {entry.name!r} is already registered to a "
                    f"different spec; rename yours, or call "
                    f"register_spec_factory({entry.name!r}, ..., replace=True) "
                    f"explicitly first"
                )
        else:
            register_spec_factory(entry.name, lambda spec=entry: spec)
        return (entry.name, default_strategy)
    if isinstance(entry, str):
        return (entry, default_strategy)
    name, strategy = entry
    return (str(name), str(strategy))


@dataclass
class Campaign:
    """A declarative sweep: specs x inputs x engines x config variants.

    Attributes
    ----------
    name:
        Campaign identifier (directory naming and reports only — it is *not*
        part of cell ids, so identical work shares cache entries across
        campaigns).
    specs:
        ``(spec name, strategy)`` pairs.  Bare names and
        :class:`~repro.core.specs.FunctionSpec` instances are accepted and
        normalized (instances are auto-registered under their own name).
    inputs:
        Explicit input tuples, or a :class:`SweepGrid` (expanded and stored as
        points).  Every input must match every spec's dimension.
    engines:
        Engine selectors; ``"auto"`` resolves per cell via
        :func:`resolve_engine`.
    configs:
        :class:`~repro.api.config.RunConfig` variants.  Each cell's config is
        a variant with the resolved engine and derived seed substituted.
    seed:
        Master seed.  Each cell's seed is derived from it by hashing the
        cell descriptor, so seeds are stable under re-expansion, independent
        of cell order, and distinct across cells.  ``None`` leaves the
        variants' own seeds in place (possibly unseeded = uncacheable).
    """

    name: str
    specs: Sequence[SpecLike]
    inputs: Union[SweepGrid, Sequence[Sequence[int]]]
    engines: Sequence[str] = ("auto",)
    configs: Sequence[RunConfig] = (RunConfig(),)
    seed: Optional[int] = None
    default_strategy: str = "auto"

    def __post_init__(self) -> None:
        self.specs = tuple(
            _normalize_spec_entry(entry, self.default_strategy) for entry in self.specs
        )
        if isinstance(self.inputs, SweepGrid):
            self.inputs = self.inputs.points()
        else:
            self.inputs = tuple(tuple(int(v) for v in x) for x in self.inputs)
        self.engines = tuple(self.engines)
        self.configs = tuple(self.configs)
        if not self.specs:
            raise ValueError("campaign needs at least one spec")
        if not self.inputs:
            raise ValueError("campaign needs at least one input")
        if not self.engines:
            raise ValueError("campaign needs at least one engine")
        if not self.configs:
            raise ValueError("campaign needs at least one config variant")

    # -- expansion -------------------------------------------------------------

    def expand(self) -> List[Cell]:
        """The deterministic cell list (duplicate descriptors collapsed)."""
        cells: List[Cell] = []
        seen: set = set()
        for spec_name, strategy in self.specs:
            spec = resolve_spec(spec_name)
            fingerprint = spec_fingerprint(spec)
            for x in self.inputs:
                if len(x) != spec.dimension:
                    raise ValueError(
                        f"input {x} has {len(x)} coordinates but spec "
                        f"{spec_name!r} takes {spec.dimension}"
                    )
                for selector in self.engines:
                    for variant in self.configs:
                        # Resolved per variant: "auto" may pick an approximate
                        # engine only for configs that opted in.
                        engine = resolve_engine(selector, x, variant)
                        variant_fields = variant.to_dict()
                        variant_fields.pop("seed")
                        variant_fields.pop("engine")
                        descriptor = json.dumps(
                            {
                                "spec_fp": fingerprint,
                                "strategy": strategy,
                                "input": list(x),
                                "engine": engine,
                                "config": variant_fields,
                            },
                            sort_keys=True,
                            separators=(",", ":"),
                        )
                        if self.seed is not None:
                            seed: Optional[int] = _derive_cell_seed(self.seed, descriptor)
                        else:
                            seed = variant.seed
                        config = variant.replace(engine=engine, seed=seed)
                        cell_id = hashlib.sha256(
                            f"{descriptor}|seed={seed}".encode("utf-8")
                        ).hexdigest()[:16]
                        if cell_id in seen:
                            continue
                        seen.add(cell_id)
                        cells.append(
                            Cell(
                                index=len(cells),
                                spec=spec_name,
                                strategy=strategy,
                                input=tuple(x),
                                engine=engine,
                                config=config,
                                spec_fingerprint=fingerprint,
                                cell_id=cell_id,
                            )
                        )
        return cells

    def __len__(self) -> int:
        return len(self.expand())

    # -- manifest persistence --------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "specs": [list(entry) for entry in self.specs],
            "inputs": [list(x) for x in self.inputs],
            "engines": list(self.engines),
            "configs": [config.to_dict() for config in self.configs],
            "seed": self.seed,
            "default_strategy": self.default_strategy,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Campaign":
        return cls(
            name=data["name"],
            specs=[tuple(entry) for entry in data["specs"]],
            inputs=[tuple(x) for x in data["inputs"]],
            engines=tuple(data["engines"]),
            configs=tuple(RunConfig.from_dict(c) for c in data["configs"]),
            seed=data.get("seed"),
            default_strategy=data.get("default_strategy", "auto"),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Campaign":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


# ---------------------------------------------------------------------------
# The campaign lifecycle: expand -> skip done -> cache -> execute -> aggregate
# ---------------------------------------------------------------------------


@dataclass
class CampaignRun:
    """What :func:`run_campaign` hands back: rows, summary, and provenance counts."""

    campaign: Campaign
    out_dir: str
    results: List[CellResult]
    summary: CampaignSummary
    total_cells: int
    already_done: int = 0
    from_cache: int = 0
    executed: int = 0

    @property
    def complete(self) -> bool:
        return self.already_done + self.from_cache + self.executed >= self.total_cells


def run_campaign(
    campaign: Campaign,
    out_dir: str,
    workers: int = 1,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
    executor=None,
    progress: Optional[Callable[[CellResult, str], None]] = None,
    retry_errors: bool = False,
    cells: Optional[List[Cell]] = None,
    trace: bool = False,
) -> CampaignRun:
    """Run (or resume) a campaign into ``out_dir``; see the module docstring.

    ``out_dir`` receives ``manifest.json``, ``results.jsonl``,
    ``summary.json``, and a ``provenance.json`` run manifest (version, code
    salt, engine list, spec fingerprints, config cache keys — see
    :func:`repro.obs.provenance.run_manifest`).  Running into a directory
    that already holds a *different* campaign manifest is an error; the
    *same* campaign resumes.  ``cache_dir=None`` disables the
    content-addressed cache.  ``progress`` (if given) is called per cell with
    its result and its source: ``"done"`` (recorded by a previous run),
    ``"cache"``, or ``"run"``.  Recorded error rows normally count as done;
    ``retry_errors=True`` re-executes them (the retried row supersedes the
    old one when results are collected).  ``cells`` accepts a precomputed
    ``campaign.expand()`` so callers that already expanded (the CLI, for its
    progress total) skip a second expansion.

    ``trace=True`` additionally writes ``trace.jsonl`` — a schema-versioned
    span/event trace (``repro.obs.trace``) covering the campaign span, one
    ``lab.cell`` span per executed cell, worker heartbeats, and (for
    in-process cells) per-trial ``kernel.run`` spans — readable with
    ``python -m repro trace``.  Tracing is installed process-globally for
    the duration of the call and restored afterwards.

    Results are appended to the store in deterministic cell order (the pool
    executor's ordered ``imap`` guarantees this even across workers).
    """
    out_dir = str(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    manifest_path = os.path.join(out_dir, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        existing = Campaign.load(manifest_path)
        if existing.to_dict() != campaign.to_dict():
            raise ValueError(
                f"{out_dir!r} already holds a different campaign "
                f"({existing.name!r}); pick a fresh --out directory"
            )
    else:
        campaign.save(manifest_path)

    store = ResultStore(os.path.join(out_dir, RESULTS_NAME))
    if cells is None:
        cells = campaign.expand()

    fingerprints: Dict[str, str] = {}
    config_keys = set()
    for cell in cells:
        fingerprints.setdefault(cell.spec, cell.spec_fingerprint)
        config_keys.add(cell.config.cache_key())
    provenance = run_manifest(
        engines=campaign.engines,
        spec_fingerprints=fingerprints,
        extra={
            "campaign": campaign.name,
            "seed": campaign.seed,
            "total_cells": len(cells),
            "config_cache_keys": sorted(config_keys),
        },
    )
    with open(os.path.join(out_dir, PROVENANCE_NAME), "w", encoding="utf-8") as handle:
        json.dump(provenance, handle, indent=2, sort_keys=True)
        handle.write("\n")

    sink = None
    previous_tracer = None
    if trace:
        sink = JsonlTraceSink(os.path.join(out_dir, TRACE_NAME), manifest=provenance)
        previous_tracer = install_tracer(Tracer(sink))
    tracer = get_tracer()
    campaign_span = tracer.span(
        "campaign.run", campaign=campaign.name, cells=len(cells), workers=workers
    )
    campaign_span.__enter__()
    try:
        recorded = {row.cell_id: row for row in store.iter_rows()}
        already_done = 0
        pending: List[Cell] = []
        for cell in cells:
            row = recorded.get(cell.cell_id)
            if row is not None and (row.ok or not retry_errors):
                already_done += 1
                if progress:
                    progress(row, "done")
            else:
                pending.append(cell)

        cache = ResultCache(cache_dir) if cache_dir is not None else None
        from_cache = 0
        to_run: List[Cell] = []
        for cell in pending:
            payload = cache.get(cell.cache_key()) if cache and cell.cacheable else None
            if payload is not None and payload.get("cell_id") == cell.cell_id:
                result = CellResult.from_dict(payload)
                result.cached = True
                result.wall_time = 0.0
                store.append(result)
                from_cache += 1
                tracer.event("cache.hit", cell=cell.cell_id, spec=cell.spec)
                if progress:
                    progress(result, "cache")
            else:
                to_run.append(cell)

        if executor is None:
            from repro.lab.executor import PoolExecutor, SerialExecutor

            executor = (
                PoolExecutor(workers=workers, chunksize=chunksize, timeout=timeout)
                if workers > 1
                else SerialExecutor(timeout=timeout)
            )

        executed = 0
        for cell, result in zip(to_run, executor.map(to_run)):
            store.append(result)
            executed += 1
            if cache is not None and cell.cacheable and result.ok:
                cache.put(cell.cache_key(), result.deterministic_dict())
            if progress:
                progress(result, "run")

        rows_by_id = {row.cell_id: row for row in store.iter_rows()}
        results = [
            rows_by_id[cell.cell_id] for cell in cells if cell.cell_id in rows_by_id
        ]
        summary = summarize(results, campaign=campaign.name)
        summary.corrupt_lines_skipped = store.last_scan.corrupt_interior
        with open(os.path.join(out_dir, SUMMARY_NAME), "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        # Distributed backends expose per-worker counters and per-shard trace
        # files; fold both into the campaign's artifacts (duck-typed so the
        # seam stays "anything with map()").
        stats_hook = getattr(executor, "worker_stats", None)
        if callable(stats_hook):
            worker_stats = stats_hook()
            if worker_stats:
                provenance["workers"] = worker_stats
                with open(
                    os.path.join(out_dir, PROVENANCE_NAME), "w", encoding="utf-8"
                ) as handle:
                    json.dump(provenance, handle, indent=2, sort_keys=True)
                    handle.write("\n")
        campaign_span.set(
            executed=executed, from_cache=from_cache, already_done=already_done
        )
    finally:
        campaign_span.__exit__(None, None, None)
        if previous_tracer is not None:
            install_tracer(previous_tracer)
        if sink is not None:
            sink.close()

    shards_hook = getattr(executor, "trace_shards", None)
    if sink is not None and callable(shards_hook):
        shards = shards_hook()
        if shards:
            # The coordinator's own trace is shard zero; workers' cell spans
            # merge in deduplicated by cell id.
            trace_path = os.path.join(out_dir, TRACE_NAME)
            merge_trace_files(trace_path, [trace_path] + list(shards), manifest=provenance)

    return CampaignRun(
        campaign=campaign,
        out_dir=out_dir,
        results=results,
        summary=summary,
        total_cells=len(cells),
        already_done=already_done,
        from_cache=from_cache,
        executed=executed,
    )


def resume_campaign(out_dir: str, **kwargs) -> CampaignRun:
    """Resume an interrupted campaign from its ``manifest.json``.

    Pure convenience over :func:`run_campaign` — running the same campaign
    into the same directory *is* resumption; this just reloads the manifest
    so callers (the CLI) need only the directory.
    """
    manifest_path = os.path.join(str(out_dir), MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise FileNotFoundError(
            f"no campaign manifest at {manifest_path!r}; was this directory "
            f"produced by `repro run` / run_campaign?"
        )
    campaign = Campaign.load(manifest_path)
    return run_campaign(campaign, out_dir, **kwargs)
