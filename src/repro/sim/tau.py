"""Shared tau-leap selection math (Cao–Gillespie–Petzold 2006).

Both tau-leaping engines — the scalar :class:`repro.sim.kernel.TauLeapPolicy`
stepper and the vectorized :class:`repro.sim.engine.BatchTauLeapEngine` —
select their leap length with the largest-relative-change bound of Cao,
Gillespie & Petzold, *J. Chem. Phys.* 124, 044109 (2006): choose the largest
``tau`` such that no species is expected to drift (in mean or in standard
deviation) by more than ``epsilon * x_i / g_i``, where ``g_i`` is the
highest-order-reaction factor for species ``i``.

This module is the single home of that math so the two engines cannot
disagree on the bound:

* :func:`build_g_candidates` precomputes, per reactant species, the distinct
  ``(reaction order, own coefficient)`` pairs over the reactions consuming
  it — the data ``g_i`` is computed from.
* :func:`g_factor` / :func:`select_tau` are the scalar forms, moved here
  verbatim from the PR 5 kernel stepper (plain-python float ops in the same
  order, so seeded scalar ``engine="tau"`` streams are bit-for-bit
  unchanged by the refactor).
* :func:`g_factor_batch` / :func:`select_tau_batch` are the numpy forms used
  by the batched engine: one ``(B,)`` tau per trial from dense ``(B, R)``
  propensities and ``(B, S)`` counts.  They compute the same bound up to
  float summation order (dense matrix products accumulate drift sums in a
  different order than the scalar dict loop), which is why the batched
  engine is admitted statistically (KS gates), not bit-for-bit.
* :func:`is_critical` / :func:`critical_mask` encode the shared
  ``n_critical`` rule deciding when a leap is too small to be worth the
  approximation error and the engine should fall back to exact SSA steps.

See ``DESIGN.md`` §10 for how the batched engine composes these helpers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "GCandidates",
    "build_g_candidates",
    "g_factor",
    "select_tau",
    "g_factor_batch",
    "select_tau_batch",
    "BatchTauSelector",
    "is_critical",
    "critical_mask",
    "net_drift_matrices",
]

#: Per reactant species index: the distinct (reaction order, own coefficient)
#: pairs over the reactions consuming it, sorted for determinism.
GCandidates = Dict[int, Tuple[Tuple[int, int], ...]]


def build_g_candidates(
    reactant_terms: Sequence[Sequence[Tuple[int, int]]],
) -> GCandidates:
    """Precompute the ``g_i`` factor data from the IR's ``reactant_terms``.

    For each species ``s`` consumed by at least one reaction, collect the
    distinct ``(order, k)`` pairs where ``order`` is the total reactant count
    of a consuming reaction and ``k`` is ``s``'s own coefficient in it.
    ``g_i = order`` for coefficient 1; higher self-coefficients get the Cao
    et al. small-count correction (``order + (k - 1) / (x - 1)``).
    """
    candidates: Dict[int, set] = {}
    for terms in reactant_terms:
        order = sum(k for _, k in terms)
        for s, k in terms:
            candidates.setdefault(s, set()).add((order, k))
    return {s: tuple(sorted(pairs)) for s, pairs in candidates.items()}


def g_factor(pairs: Tuple[Tuple[int, int], ...], x: int) -> float:
    """The highest-order-reaction factor ``g_i`` of Cao et al. (2006)."""
    g = 1.0
    for order, k in pairs:
        if k <= 1:
            g = max(g, float(order))
        else:
            g = max(g, order + (k - 1) / float(max(x - 1, 1)))
    return g


def select_tau(
    g_candidates: GCandidates,
    net_terms: Sequence[Sequence[Tuple[int, int]]],
    props: Sequence[float],
    counts: List[int],
    epsilon: float,
) -> float:
    """The largest leap over which no propensity should drift by more than
    ``epsilon`` relatively (species-wise mean/variance bound, scalar form).

    Returns ``math.inf`` when no reactant species ever changes (purely
    catalytic kinetics: propensities are constant, so any leap is exact).
    """
    mean_drift: Dict[int, float] = {}
    var_drift: Dict[int, float] = {}
    for j, a in enumerate(props):
        if a <= 0.0:
            continue
        for s, delta in net_terms[j]:
            mean_drift[s] = mean_drift.get(s, 0.0) + delta * a
            var_drift[s] = var_drift.get(s, 0.0) + delta * delta * a
    tau = math.inf
    for s, pairs in g_candidates.items():
        mu = abs(mean_drift.get(s, 0.0))
        sigma2 = var_drift.get(s, 0.0)
        if mu == 0.0 and sigma2 == 0.0:
            continue
        bound = max(epsilon * counts[s] / g_factor(pairs, counts[s]), 1.0)
        if mu > 0.0:
            tau = min(tau, bound / mu)
        if sigma2 > 0.0:
            tau = min(tau, bound * bound / sigma2)
    return tau


def net_drift_matrices(
    net_terms: Sequence[Sequence[Tuple[int, int]]], n_species: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense ``(R, S)`` float net-change matrix and its elementwise square.

    ``props @ net`` is the per-species mean drift rate and ``props @ net_sq``
    the variance drift rate — the two sums :func:`select_tau` accumulates
    sparsely, as matrix products for the batch form.
    """
    n_reactions = len(net_terms)
    net = np.zeros((n_reactions, n_species), dtype=np.float64)
    for j, terms in enumerate(net_terms):
        for s, delta in terms:
            net[j, s] = float(delta)
    return net, net * net


def g_factor_batch(pairs: Tuple[Tuple[int, int], ...], x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`g_factor`: one ``g_i`` per trial for species counts ``x``."""
    g = np.ones(x.shape, dtype=np.float64)
    for order, k in pairs:
        if k <= 1:
            np.maximum(g, float(order), out=g)
        else:
            np.maximum(g, order + (k - 1) / np.maximum(x - 1.0, 1.0), out=g)
    return g


class BatchTauSelector:
    """Precompiled batch CGP tau selection for one :class:`CompiledCRN` IR.

    Everything shape-dependent is materialized once at construction so the
    per-round :meth:`select` is a fixed, species-loop-free sequence of dense
    numpy ops (the hot path of the batched tau engine):

    * ``net`` / ``net_sq`` — the drift matrices of
      :func:`net_drift_matrices`, restricted to the *constrained* species
      columns (the keys of ``g_candidates``: species consumed by at least
      one reaction; species that are only produced never bound tau, exactly
      as in the scalar :func:`select_tau` loop).
    * ``base_g`` — the count-independent part of ``g_i`` (the max reaction
      order over pairs with own-coefficient 1).
    * ``corrections`` — the rare ``(column, order, k)`` triples with own
      coefficient ``k > 1`` that need the count-dependent Cao et al.
      small-count term; networks without higher self-coefficients (all five
      paper strategy families) skip this loop entirely.
    """

    __slots__ = ("columns", "net", "net_sq", "base_g", "corrections")

    def __init__(
        self,
        g_candidates: GCandidates,
        net_terms: Sequence[Sequence[Tuple[int, int]]],
        n_species: int,
    ) -> None:
        self.columns = np.array(sorted(g_candidates), dtype=np.intp)
        net, net_sq = net_drift_matrices(net_terms, n_species)
        self.net = np.ascontiguousarray(net[:, self.columns])
        self.net_sq = np.ascontiguousarray(net_sq[:, self.columns])
        self.base_g = np.ones(self.columns.size, dtype=np.float64)
        self.corrections: List[Tuple[int, float, int]] = []
        for c, s in enumerate(self.columns.tolist()):
            for order, k in g_candidates[s]:
                if k <= 1:
                    self.base_g[c] = max(self.base_g[c], float(order))
                else:
                    self.corrections.append((c, float(order), int(k)))

    def select(
        self, props: np.ndarray, counts: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """One CGP tau bound per batch row (the vectorized :func:`select_tau`).

        ``props`` is ``(B, R)``, ``counts`` is ``(B, S)``.  Rows with no
        drifting reactant species get ``inf`` (the caller applies the
        catalytic-kinetics cap).
        """
        if self.columns.size == 0:
            return np.full(props.shape[0], np.inf, dtype=np.float64)
        x = counts[:, self.columns].astype(np.float64)
        g = self.base_g
        if self.corrections:
            g = np.broadcast_to(g, x.shape).copy()
            for c, order, k in self.corrections:
                np.maximum(
                    g[:, c],
                    order + (k - 1) / np.maximum(x[:, c] - 1.0, 1.0),
                    out=g[:, c],
                )
        bound = np.maximum(epsilon * x / g, 1.0)
        mu = np.abs(props @ self.net)  # (B, S_c): |sum_j delta_js * a_j|
        sigma2 = props @ self.net_sq  # (B, S_c): sum_j delta_js^2 * a_j
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.minimum(
                np.where(mu > 0.0, bound / mu, np.inf),
                np.where(sigma2 > 0.0, bound * bound / sigma2, np.inf),
            )
        return ratio.min(axis=1)


def select_tau_batch(
    g_candidates: GCandidates,
    net_terms: Sequence[Sequence[Tuple[int, int]]],
    n_species: int,
    props: np.ndarray,
    counts: np.ndarray,
    epsilon: float,
) -> np.ndarray:
    """One-shot convenience form of :class:`BatchTauSelector` (tests / tools).

    The engine hot path holds a :class:`BatchTauSelector` instead — this
    rebuilds the precompiled selector on every call.
    """
    selector = BatchTauSelector(g_candidates, net_terms, n_species)
    return selector.select(np.atleast_2d(props), np.atleast_2d(counts), epsilon)


def is_critical(tau: float, total: float, n_critical: float) -> bool:
    """The shared fallback rule: a leap expecting fewer than ``n_critical``
    firings buys nothing over exact SSA and risks bias, so don't leap."""
    return tau * total < n_critical


def critical_mask(
    tau: np.ndarray, totals: np.ndarray, n_critical: float
) -> np.ndarray:
    """Vectorized :func:`is_critical`: True per row where leaping is not worth it."""
    return tau * totals < n_critical
