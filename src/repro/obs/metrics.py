"""A dependency-free metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` holds named :class:`Counter`/:class:`Gauge`/
:class:`Histogram` families; a family with ``labels=(...)`` fans out into
per-label-value series via ``metric.labels(k=v)``.  This replaces the three
parallel counter implementations that grew across the stack (kernel stepper
ints, ``serve`` dict counters, lab cache row flags) with a single shape that

* the ``/v1/stats`` JSON snapshot can read back (``series()``),
* the ``GET /v1/metrics`` endpoint can render as Prometheus text
  (:func:`render_prometheus` — exposition format 0.0.4, stdlib only), and
* tests can assert against without reaching into private dicts.

Thread safety: a single registry-wide lock guards series creation and every
update.  That is deliberate — the registry sits on request/cell boundaries
(hundreds of ops per second), never inside simulation step loops, which keep
their counters as plain ints in :class:`repro.obs.stats.RunStats` and fold
into the registry once per run.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): request/cell latencies from 100µs to ~1min.
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0,
)

LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Series:
    """One (metric, label-values) time series: a value or histogram state."""

    __slots__ = ("value", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        self.value = 0.0
        if buckets is not None:
            self.bucket_counts = [0] * (len(buckets) + 1)  # trailing +Inf
            self.sum = 0.0
            self.count = 0


class Metric:
    """A named family of series; label-less families have one implicit series."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.registry = registry
        self.name = _check_name(name)
        self.help = help_text
        self.label_names = label_names
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.buckets = buckets
        self._series: Dict[LabelValues, _Series] = {}
        if not label_names:
            self._series[()] = _Series(buckets)

    def _series_for(self, values: LabelValues) -> _Series:
        with self.registry._lock:
            series = self._series.get(values)
            if series is None:
                series = _Series(self.buckets)
                self._series[values] = series
            return series

    def _values_from(self, labels: Dict[str, Any]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def labels(self, **labels: Any) -> "Metric._Child":
        return Metric._Child(self, self._values_from(labels))

    class _Child:
        __slots__ = ("metric", "values")

        def __init__(self, metric: "Metric", values: LabelValues) -> None:
            self.metric = metric
            self.values = values

        def inc(self, amount: float = 1.0) -> None:
            self.metric._inc(self.values, amount)

        def set(self, value: float) -> None:
            self.metric._set(self.values, value)

        def observe(self, value: float) -> None:
            self.metric._observe(self.values, value)

        @property
        def value(self) -> float:
            return self.metric.value_of(self.values)

    # Label-less convenience forwarding.
    def inc(self, amount: float = 1.0) -> None:
        self._inc((), amount)

    def set(self, value: float) -> None:
        self._set((), value)

    def observe(self, value: float) -> None:
        self._observe((), value)

    @property
    def value(self) -> float:
        return self.value_of(())

    # -- storage ops (overridden per kind where semantics differ) -----------

    def _inc(self, values: LabelValues, amount: float) -> None:
        series = self._series_for(values)
        with self.registry._lock:
            series.value += amount

    def _set(self, values: LabelValues, value: float) -> None:
        series = self._series_for(values)
        with self.registry._lock:
            series.value = float(value)

    def _observe(self, values: LabelValues, value: float) -> None:
        raise TypeError(f"{self.kind} metric {self.name!r} does not support observe()")

    def value_of(self, values: LabelValues = ()) -> float:
        series = self._series.get(values)
        return series.value if series is not None else 0.0

    def series(self) -> Dict[LabelValues, float]:
        """Label-values -> current value (counters/gauges)."""
        with self.registry._lock:
            return {values: series.value for values, series in self._series.items()}


class Counter(Metric):
    kind = "counter"

    def _inc(self, values: LabelValues, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        Metric._inc(self, values, amount)

    def _set(self, values: LabelValues, value: float) -> None:
        raise TypeError(f"counter {self.name!r} does not support set()")


class Gauge(Metric):
    kind = "gauge"

    def dec(self, amount: float = 1.0) -> None:
        self._inc((), -amount)


class Histogram(Metric):
    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        chosen = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        super().__init__(registry, name, help_text, label_names, buckets=chosen)

    def _inc(self, values: LabelValues, amount: float) -> None:
        raise TypeError(f"histogram {self.name!r} does not support inc()")

    def _set(self, values: LabelValues, value: float) -> None:
        raise TypeError(f"histogram {self.name!r} does not support set()")

    def _observe(self, values: LabelValues, value: float) -> None:
        series = self._series_for(values)
        index = bisect_left(self.buckets, value)
        with self.registry._lock:
            series.bucket_counts[index] += 1
            series.sum += value
            series.count += 1

    def snapshot_of(self, values: LabelValues = ()) -> Dict[str, Any]:
        """``{"count", "sum", "buckets": [(le, cumulative), ...]}`` for a series."""
        with self.registry._lock:
            series = self._series.get(values)
            if series is None:
                return {"count": 0, "sum": 0.0, "buckets": []}
            cumulative, out = 0, []
            for bound, bucket in zip(
                list(self.buckets) + [math.inf], series.bucket_counts
            ):
                cumulative += bucket
                out.append((bound, cumulative))
            return {"count": series.count, "sum": series.sum, "buckets": out}


class MetricsRegistry:
    """Named metric families; idempotent getters so modules can share names."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, labels, buckets=None) -> Metric:
        label_names = tuple(labels or ())
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.label_names}"
                    )
                return existing
            if buckets is not None:
                metric = cls(self, name, help_text, label_names, buckets=buckets)
            else:
                metric = cls(self, name, help_text, label_names)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Iterable[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels,
            buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]


#: Shared default registry (lab cache, CLI runs).  The server builds its own
#: per-instance registry so parallel test servers never cross-count.
_DEFAULT = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _DEFAULT


# -- Prometheus text exposition ----------------------------------------------

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_labels(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus exposition-format 0.0.4 text."""
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for values in sorted(metric._series):
                snap = metric.snapshot_of(values)
                for bound, cumulative in snap["buckets"]:
                    labels = _format_labels(
                        metric.label_names, values, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _format_labels(metric.label_names, values)
                lines.append(f"{metric.name}_sum{labels} {_format_value(snap['sum'])}")
                lines.append(f"{metric.name}_count{labels} {snap['count']}")
        else:
            for values, value in sorted(metric.series().items()):
                labels = _format_labels(metric.label_names, values)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"
