"""Campaign executors: a multiprocessing worker pool and a serial fallback.

Both executors drive the same pure worker function, :func:`run_cell`, so for
seeded cells they are interchangeable by construction — the parallel pool
must produce bit-identical deterministic rows to the serial loop (enforced by
``tests/test_lab_executor.py``).  The division of labour:

* :func:`run_cell` — resolve the cell's spec by name, build (and memoize, per
  process) its CRN, run the configured engine, and fold the outcome into a
  :class:`~repro.lab.store.CellResult`.  *Every* exception is captured as an
  ``status="error"`` row: a failed cell is a data point, not a crashed
  campaign.
* :class:`SerialExecutor` — in-process loop; the debugging baseline (plain
  tracebacks in ``error`` rows, no fork in the way of ``pdb``).
* :class:`PoolExecutor` — ``multiprocessing.Pool`` + ordered ``imap`` with
  explicit chunking.  Ordered iteration keeps the result stream (and hence
  the JSONL store) in deterministic cell order regardless of which worker
  finishes first.

Per-cell wall-clock timeouts use ``SIGALRM`` inside the worker (pool workers
run tasks on their main thread), so a hung cell becomes a timeout error row
without poisoning the pool.  On platforms without ``SIGALRM`` the timeout is
silently unenforced rather than failing the campaign.

New executor backends (async, remote, sharded) plug in by exposing the same
``map(cells) -> iterator of CellResult`` surface and being passed to
:func:`repro.lab.campaign.run_campaign` via ``executor=``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.crn.network import CRN
from repro.lab.campaign import Cell, resolve_spec
from repro.lab.store import CellResult
from repro.obs.trace import get_tracer
from repro.sim.runner import run_many


class CellTimeoutError(Exception):
    """A cell exceeded its wall-clock budget."""


# Per-process CRN memo: workers build each (spec, strategy) CRN once and
# reuse it for every cell that references it.
_CRN_CACHE: Dict[Tuple[str, str], CRN] = {}


def _built_crn(spec_name: str, strategy: str) -> CRN:
    key = (spec_name, strategy)
    crn = _CRN_CACHE.get(key)
    if crn is None:
        from repro.core.characterization import build_crn_for

        spec = resolve_spec(spec_name)
        crn = build_crn_for(spec, name=spec.name, strategy=strategy)
        crn.compiled()  # warm the dense matrices for vectorized cells
        _CRN_CACHE[key] = crn
    return crn


def _error_row(
    cell: Cell, exc: BaseException, wall_time: float, cpu_time: Optional[float] = None
) -> CellResult:
    return CellResult(
        cell_id=cell.cell_id,
        spec=cell.spec,
        strategy=cell.strategy,
        input=cell.input,
        engine=cell.engine,
        config=cell.config.to_dict(),
        status="error",
        error=f"{type(exc).__name__}: {exc}",
        wall_time=wall_time,
        cpu_time=cpu_time,
        worker=os.getpid(),
    )


def run_cell(cell: Cell) -> CellResult:
    """Execute one cell; deterministic for seeded cells, never raises.

    The returned row carries execution provenance next to the deterministic
    payload: wall seconds, CPU seconds (``time.process_time`` — the number
    that exposes a cell starved by oversubscribed workers), and the executing
    worker's PID.  All three live in
    :data:`repro.lab.store.PROVENANCE_FIELDS`, so the serial/parallel
    bit-identity contract and the cache payloads are unaffected.
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        spec = resolve_spec(cell.spec)
        expected = spec(cell.input)
        crn = _built_crn(cell.spec, cell.strategy)
        report = run_many(crn, cell.input, config=cell.config)
        return CellResult(
            cell_id=cell.cell_id,
            spec=cell.spec,
            strategy=cell.strategy,
            input=cell.input,
            engine=cell.engine,
            config=cell.config.to_dict(),
            status="ok",
            expected=expected,
            outputs=tuple(report.outputs),
            output_mode=report.output_mode,
            output_unanimous=report.output_unanimous,
            converged=report.all_silent_or_converged,
            correct=(report.output_mode == expected),
            mean_steps=report.mean_steps,
            total_steps=sum(report.steps),
            wall_time=time.perf_counter() - start,
            cpu_time=time.process_time() - cpu_start,
            worker=os.getpid(),
        )
    except Exception as exc:  # noqa: BLE001 — failure capture is the contract
        return _error_row(
            cell, exc, time.perf_counter() - start, time.process_time() - cpu_start
        )


def run_cell_with_timeout(cell: Cell, timeout: Optional[float] = None) -> CellResult:
    """:func:`run_cell` under a ``SIGALRM`` wall-clock budget (when enforceable)."""
    can_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return run_cell(cell)

    def _on_alarm(signum, frame):
        raise CellTimeoutError(f"cell exceeded the {timeout}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    started = time.monotonic()
    prior_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        # a timeout inside run_cell is caught by its handler and becomes an
        # error row; the except below covers the race where the alarm fires
        # in the gap between run_cell returning and the timer reset
        return run_cell(cell)
    except CellTimeoutError as exc:
        return _error_row(cell, exc, timeout)
    finally:
        # Disarm our timer, restore the saved handler, and only then re-arm
        # any timer the caller had running (minus the time we consumed) so the
        # restored handler — not ours — receives its SIGALRM.
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        remaining, interval = prior_timer
        if remaining > 0.0:
            remaining = max(1e-6, remaining - (time.monotonic() - started))
            signal.setitimer(signal.ITIMER_REAL, remaining, interval)


def _pool_task(payload: Tuple[Cell, Optional[float]]) -> CellResult:
    cell, timeout = payload
    return run_cell_with_timeout(cell, timeout)


def _traced_results(results: Iterable[CellResult]) -> Iterator[CellResult]:
    """Emit a per-cell span + a worker heartbeat as each result arrives.

    The pool path: results come back to the *parent* process through ordered
    ``imap``, so the trace file has a single span writer per cell even though
    the work happened in a forked worker — the span duration is the
    worker-measured ``wall_time`` carried on the row.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        yield from results
        return
    for result in results:
        tracer.emit_span(
            "lab.cell",
            time.time() - result.wall_time,
            result.wall_time,
            cell=result.cell_id,
            spec=result.spec,
            engine=result.engine,
            status=result.status,
            worker=result.worker,
            cpu_s=result.cpu_time,
        )
        tracer.event("worker.heartbeat", worker=result.worker, cell=result.cell_id)
        yield result


class SerialExecutor:
    """In-process, one cell at a time — the debugging fallback."""

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout

    def map(self, cells: Iterable[Cell]) -> Iterator[CellResult]:
        tracer = get_tracer()
        if not tracer.enabled:
            for cell in cells:
                yield run_cell_with_timeout(cell, self.timeout)
            return
        # In-process cells run inside a live span, so their per-trial
        # kernel.run spans nest under the cell in the trace tree.
        for cell in cells:
            with tracer.span(
                "lab.cell", cell=cell.cell_id, spec=cell.spec, engine=cell.engine
            ) as span:
                result = run_cell_with_timeout(cell, self.timeout)
                span.set(
                    status=result.status, worker=result.worker, cpu_s=result.cpu_time
                )
            tracer.event("worker.heartbeat", worker=result.worker, cell=result.cell_id)
            yield result

    def __repr__(self) -> str:
        return f"SerialExecutor(timeout={self.timeout})"


class PoolExecutor:
    """Multiprocessing worker pool with ordered results and explicit chunking.

    ``chunksize=None`` picks ``len(cells) / (4 * workers)`` (clamped to
    [1, 16]): large enough to amortize IPC, small enough that the tail of the
    campaign still load-balances.  Falls back to the serial path for empty or
    single-cell batches.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if workers is None:
            workers = max(1, (os.cpu_count() or 2) - 1)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.chunksize = chunksize
        self.timeout = timeout

    def _chunksize_for(self, count: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, min(16, count // (4 * self.workers)))

    def map(self, cells: Iterable[Cell]) -> Iterator[CellResult]:
        cells = list(cells)
        if len(cells) <= 1 or self.workers == 1:
            yield from SerialExecutor(timeout=self.timeout).map(cells)
            return
        payloads = [(cell, self.timeout) for cell in cells]
        with multiprocessing.Pool(processes=min(self.workers, len(cells))) as pool:
            # imap (not imap_unordered): results come back in cell order, so
            # the store stays deterministic no matter the scheduling.
            yield from _traced_results(
                pool.imap(_pool_task, payloads, self._chunksize_for(len(cells)))
            )

    def __repr__(self) -> str:
        return (
            f"PoolExecutor(workers={self.workers}, chunksize={self.chunksize}, "
            f"timeout={self.timeout})"
        )
