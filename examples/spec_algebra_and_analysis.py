#!/usr/bin/env python3
"""Building new computable functions from old ones, and auditing the result.

Obliviously-computable functions are closed under composition, minimum, sum and
scaling (Observation 2.2 and the combinators used inside Lemma 6.2).  This
example builds ``3·min(x1, x2+1)`` out of catalog pieces with the spec-level
combinators, verifies the automatically assembled CRN, and then runs the
stoichiometric analysis tools over it (conservation laws, producible species,
dead-reaction audit).

Run with::

    python examples/spec_algebra_and_analysis.py
"""

from repro.core.algebra import min_of_specs, scale_spec
from repro.core.characterization import check_obliviously_computable
from repro.core.specs import FunctionSpec
from repro.crn import CRN, species
from repro.crn.stoichiometry import (
    conservation_laws,
    dead_reactions,
    producible_species,
    stoichiometric_matrix,
)
from repro.quilt import EventuallyMin, QuiltAffine
from repro.verify import verify_stable_computation


def projection_specs():
    """f(x1,x2) = x1 and g(x1,x2) = x2 + 1 as specs with hand-written CRNs."""
    X1, X2, Y, L = species("X1 X2 Y L")
    proj1 = FunctionSpec(
        name="x1",
        dimension=2,
        func=lambda x: x[0],
        eventually_min=EventuallyMin([QuiltAffine.affine((1, 0), 0)], (0, 0)),
        known_crn=CRN([X1 >> Y], (X1, X2), Y, name="proj1"),
        expected_obliviously_computable=True,
    )
    shifted2 = FunctionSpec(
        name="x2+1",
        dimension=2,
        func=lambda x: x[1] + 1,
        eventually_min=EventuallyMin([QuiltAffine.affine((0, 1), 1)], (0, 0)),
        known_crn=CRN([X2 >> Y, L >> Y], (X1, X2), Y, leader=L, name="x2+1"),
        expected_obliviously_computable=True,
    )
    return proj1, shifted2


def main() -> None:
    proj1, shifted2 = projection_specs()

    print("=== Combining specs: 3·min(x1, x2 + 1) ===")
    combined = scale_spec(min_of_specs([proj1, shifted2]), 3, name="3*min(x1,x2+1)")
    print(f"values on a small grid: "
          f"{[[combined((a, b)) for b in range(3)] for a in range(3)]}")

    verdict = check_obliviously_computable(combined)
    print(verdict.describe())
    print()

    crn = combined.known_crn
    print(f"automatically assembled CRN ({crn.name}):")
    print(crn.describe())
    report = verify_stable_computation(
        crn, combined.func, inputs=[(0, 0), (1, 0), (2, 1), (1, 3)], function_name=combined.name
    )
    print(report.describe())
    print()

    print("=== Stoichiometric analysis of the assembled CRN ===")
    matrix = stoichiometric_matrix(crn)
    print(f"stoichiometric matrix shape (species x reactions): {matrix.shape}")
    laws = conservation_laws(crn)
    print(f"conservation-law basis size: {len(laws)}")
    producible = producible_species(crn)
    print(f"producible species: {sorted(sp.name for sp in producible)}")
    dead = dead_reactions(crn)
    print(f"dead reactions: {[str(rxn) for rxn in dead] or 'none'}")


if __name__ == "__main__":
    main()
