"""``python -m repro`` — the campaign CLI (see :mod:`repro.lab.cli`)."""

import sys

from repro.lab.cli import main

if __name__ == "__main__":
    sys.exit(main())
