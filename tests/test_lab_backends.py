"""Distributed work-queue backends: lease protocol, shard merge, serial identity.

The correctness story under test: cells are deterministic and content
addressed, so *claims* only prevent duplicate work (never duplicate rows) and
the merged view of any number of worker shards — including after a worker is
SIGKILLed mid-run and its cells reclaimed — is canonical-JSON-identical to a
serial run of the same campaign.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api.config import RunConfig
from repro.lab.backends import (
    LocalPoolBackend,
    SharedDirBackend,
    SharedDirQueue,
    cell_from_dict,
    cell_to_dict,
    worker_loop,
)
from repro.lab.campaign import Campaign, SweepGrid, run_campaign
from repro.lab.executor import PoolExecutor, SerialExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def tiny_campaign(seed=7, grid="0:3", name="backend-test"):
    return Campaign(
        name=name,
        specs=["minimum"],
        inputs=SweepGrid.parse(grid, dimension=2),
        engines=("python",),
        configs=(RunConfig(trials=2),),
        seed=seed,
    )


def canonical(rows):
    return [
        json.dumps(r.deterministic_dict(), sort_keys=True, separators=(",", ":"))
        for r in rows
    ]


class TestCellSerialization:
    def test_round_trip(self):
        for cell in tiny_campaign().expand():
            rebuilt = cell_from_dict(json.loads(json.dumps(cell_to_dict(cell))))
            assert rebuilt == cell
            assert rebuilt.cell_id == cell.cell_id
            assert rebuilt.cache_key() == cell.cache_key()


class TestSharedDirQueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"))
        cells = tiny_campaign().expand()
        assert queue.enqueue(cells) == len(cells)
        assert queue.enqueue(cells) == 0  # tokens already issued
        assert queue.sealed()
        assert set(queue.manifest()["cell_ids"]) == {c.cell_id for c in cells}

    def test_claim_is_exclusive_and_exhaustive(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"))
        cells = tiny_campaign().expand()
        queue.enqueue(cells)
        claimed = []
        # two workers alternate claims; every cell must be handed out exactly once
        while True:
            cell = queue.claim("worker-a") or queue.claim("worker-b")
            if cell is None:
                break
            claimed.append(cell.cell_id)
        assert sorted(claimed) == sorted(c.cell_id for c in cells)
        assert len(set(claimed)) == len(claimed)

    def test_expired_lease_is_reclaimable(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"), lease_ttl=0.2)
        cells = tiny_campaign(grid="0:1").expand()
        queue.enqueue(cells)
        first = queue.claim("dying-worker")
        assert first is not None
        # the holder "dies": never renews, never completes
        assert queue.claim("other-worker") is None  # lease still live
        time.sleep(0.3)
        second = queue.claim("other-worker")
        assert second is not None
        assert second.cell_id == first.cell_id

    def test_renew_extends_only_the_holders_lease(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"), lease_ttl=0.2)
        (cell,) = tiny_campaign(grid="0:1").expand()[:1]
        queue.enqueue([cell])
        assert queue.claim("holder") is not None
        assert queue.renew(cell.cell_id, "holder", ttl=30.0) is True
        assert queue.renew(cell.cell_id, "impostor") is False
        time.sleep(0.3)
        # renewed past the ttl, so nobody else can steal it
        assert queue.claim("impostor") is None

    def test_merged_rows_dedupe_across_shards(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"))
        cells = tiny_campaign(grid="0:2").expand()
        queue.enqueue(cells)
        rows = [SerialExecutor().map([c]).__next__() for c in cells]
        # the same cell completed by two different workers (the reclaim race)
        queue.complete(cells[0].cell_id, "worker-a", rows[0])
        queue.complete(cells[0].cell_id, "worker-b", rows[0])
        for cell, row in zip(cells[1:], rows[1:]):
            queue.complete(cell.cell_id, "worker-b", row)
        merged = queue.merged_rows({c.cell_id for c in cells})
        assert set(merged) == {c.cell_id for c in cells}
        assert canonical(merged[c.cell_id] for c in cells) == canonical(rows)
        assert queue.all_done()

    def test_done_marker_always_has_a_row_behind_it(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"))
        (cell,) = tiny_campaign(grid="0:1").expand()[:1]
        queue.enqueue([cell])
        assert queue.claim("w") is not None
        (row,) = SerialExecutor().map([cell])
        queue.complete(cell.cell_id, "w", row)
        assert cell.cell_id in queue.done_ids()
        assert cell.cell_id in queue.merged_rows()
        # lease and token are gone: nothing is claimable
        assert queue.claim("other") is None


class TestLocalPoolBackend:
    def test_rows_bit_identical_to_pool_executor(self):
        cells = tiny_campaign().expand()
        backend_rows = list(LocalPoolBackend(workers=2).map(cells))
        pool_rows = list(PoolExecutor(workers=2).map(cells))
        assert canonical(backend_rows) == canonical(pool_rows)
        assert [r.cell_id for r in backend_rows] == [c.cell_id for c in cells]


class TestSharedDirBackendIdentity:
    def test_participating_run_identical_to_serial(self, tmp_path):
        campaign = tiny_campaign()
        serial = run_campaign(campaign, str(tmp_path / "serial"), cache_dir=None)
        backend = SharedDirBackend(queue_dir=str(tmp_path / "queue"))
        sharded = run_campaign(
            campaign, str(tmp_path / "sharded"), cache_dir=None, executor=backend
        )
        assert canonical(sharded.results) == canonical(serial.results)
        assert sharded.summary.correct_rate == serial.summary.correct_rate

    def test_worker_stats_folded_into_provenance(self, tmp_path):
        backend = SharedDirBackend(queue_dir=str(tmp_path / "queue"))
        run_campaign(tiny_campaign(), str(tmp_path / "out"), cache_dir=None, executor=backend)
        provenance = json.loads((tmp_path / "out" / "provenance.json").read_text())
        assert "workers" in provenance
        (stats,) = provenance["workers"].values()
        assert stats["executed"] == 9
        assert stats["errors"] == 0
        assert stats["wall_s"] > 0

    def test_trace_shards_merged_by_cell_id(self, tmp_path):
        from repro.obs.trace import read_trace

        campaign = tiny_campaign(grid="0:2")
        backend = SharedDirBackend(queue_dir=str(tmp_path / "queue"), trace=True)
        run_campaign(
            campaign, str(tmp_path / "out"), cache_dir=None, executor=backend, trace=True
        )
        records = read_trace(str(tmp_path / "out" / "trace.jsonl"))
        spans = [r for r in records if r.get("name") == "lab.cell"]
        cell_ids = [span["attrs"]["cell"] for span in spans]
        assert sorted(cell_ids) == sorted(c.cell_id for c in campaign.expand())
        assert len(set(cell_ids)) == len(cell_ids)  # merged, not concatenated

    def test_nonparticipating_backend_raises_on_stall(self, tmp_path):
        backend = SharedDirBackend(
            queue_dir=str(tmp_path / "queue"),
            participate=False,
            poll=0.05,
            stall_timeout=0.5,
        )
        with pytest.raises(RuntimeError, match="stalled"):
            list(backend.map(tiny_campaign(grid="0:1").expand()))


class TestWorkerLoop:
    def test_drains_a_sealed_queue_and_exits(self, tmp_path):
        queue = SharedDirQueue(str(tmp_path / "q"))
        cells = tiny_campaign().expand()
        queue.enqueue(cells)
        stats = worker_loop(str(tmp_path / "q"), worker_id="solo", max_idle=10.0)
        assert stats["executed"] == len(cells)
        assert stats["errors"] == 0
        assert queue.all_done()
        assert queue.worker_stats()["solo"]["executed"] == len(cells)

    def test_reclaims_a_dead_workers_cells(self, tmp_path):
        # a worker claims two cells' worth of leases and dies without completing
        queue = SharedDirQueue(str(tmp_path / "q"), lease_ttl=0.2)
        cells = tiny_campaign(grid="0:2").expand()
        queue.enqueue(cells)
        assert queue.claim("dead-worker") is not None
        assert queue.claim("dead-worker") is not None
        time.sleep(0.3)
        worker_loop(
            str(tmp_path / "q"), worker_id="survivor", lease_ttl=0.2, max_idle=10.0
        )
        merged = queue.merged_rows()
        assert set(merged) == {c.cell_id for c in cells}
        serial = list(SerialExecutor().map(cells))
        assert canonical(merged[c.cell_id] for c in cells) == canonical(serial)


def spawn_worker(queue_dir, worker_id, lease_ttl="1.0", extra=()):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue-dir", str(queue_dir),
            "--worker-id", worker_id,
            "--lease-ttl", lease_ttl,
            "--poll", "0.05",
            "--max-idle", "30",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestWorkerSubprocesses:
    def test_two_workers_merge_identical_to_serial(self, tmp_path):
        campaign = tiny_campaign(grid="0:4", name="two-worker")
        serial = run_campaign(campaign, str(tmp_path / "serial"), cache_dir=None)

        queue_dir = tmp_path / "queue"
        workers = [spawn_worker(queue_dir, f"w{i}") for i in range(2)]
        try:
            backend = SharedDirBackend(
                queue_dir=str(queue_dir), participate=False, poll=0.05
            )
            sharded = run_campaign(
                campaign, str(tmp_path / "sharded"), cache_dir=None, executor=backend
            )
        finally:
            for proc in workers:
                try:
                    proc.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert canonical(sharded.results) == canonical(serial.results)
        provenance = json.loads((tmp_path / "sharded" / "provenance.json").read_text())
        assert set(provenance["workers"]) >= {"w0", "w1"}

    def test_sigkilled_worker_resumes_without_duplicates(self, tmp_path):
        campaign = tiny_campaign(grid="0:4", name="kill-resume")
        cells = campaign.expand()
        serial = list(SerialExecutor().map(cells))

        queue_dir = tmp_path / "queue"
        queue = SharedDirQueue(str(queue_dir), lease_ttl=1.0)
        queue.enqueue(cells)

        victim = spawn_worker(queue_dir, "victim")
        try:
            deadline = time.monotonic() + 60
            while len(queue.done_ids()) < 3 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert queue.done_ids(), "victim worker never completed a cell"
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait()

        # the survivor must reclaim whatever the victim held and finish the queue
        worker_loop(
            str(queue_dir), worker_id="survivor", lease_ttl=1.0, poll=0.05,
            max_idle=30.0,
        )
        assert queue.all_done()
        merged = queue.merged_rows({c.cell_id for c in cells})
        assert canonical(merged[c.cell_id] for c in cells) == canonical(serial)

        # resuming the campaign over the same queue folds the rows with no
        # duplicates and no re-execution
        backend = SharedDirBackend(
            queue_dir=str(queue_dir), participate=False, poll=0.05
        )
        resumed = run_campaign(
            campaign, str(tmp_path / "out"), cache_dir=None, executor=backend
        )
        assert resumed.total_cells == len(cells)
        assert canonical(resumed.results) == canonical(serial)
        row_ids = [r.cell_id for r in resumed.results]
        assert len(set(row_ids)) == len(row_ids)
