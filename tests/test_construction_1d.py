"""Tests for the Theorem 3.1 (leader) and Theorem 9.2 (leaderless) 1D constructions."""

import pytest

from repro.core.construction_1d import build_1d_crn, construction_size_1d
from repro.core.construction_leaderless import (
    build_leaderless_1d_crn,
    construction_size_leaderless,
)
from repro.crn.reachability import stably_computes_exhaustive
from repro.quilt.fitting import fit_eventually_quilt_affine_1d
from repro.verify.stable import verify_stable_computation


def check_exhaustive(crn, func, values):
    verdicts = stably_computes_exhaustive(crn, lambda x: func(x[0]), [(v,) for v in values])
    assert all(v.holds and v.conclusive for v in verdicts), [
        (v.input_value, v.failure_reason) for v in verdicts if not v.holds
    ]


class TestTheorem31:
    def test_structure(self):
        crn = build_1d_crn(lambda x: min(x, 3))
        assert crn.is_output_oblivious()
        assert crn.leader is not None
        assert crn.dimension == 1

    def test_min_with_cap(self):
        crn = build_1d_crn(lambda x: min(x, 3))
        check_exhaustive(crn, lambda x: min(x, 3), range(7))

    def test_floor_function(self):
        crn = build_1d_crn(lambda x: (3 * x) // 2)
        check_exhaustive(crn, lambda x: (3 * x) // 2, range(7))

    def test_constant_offset(self):
        crn = build_1d_crn(lambda x: x + 4)
        check_exhaustive(crn, lambda x: x + 4, range(5))

    def test_irregular_prefix_then_periodic(self):
        def func(x):
            table = [1, 1, 2, 6]
            if x < len(table):
                return table[x]
            return 6 + 3 * (x - 3) + (x - 3) // 2

        crn = build_1d_crn(func)
        check_exhaustive(crn, func, range(9))

    def test_accepts_prefitted_structure(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: 2 * x + 1)
        crn = build_1d_crn(structure)
        check_exhaustive(crn, lambda x: 2 * x + 1, range(5))

    def test_size_formula(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: min(x, 4))
        size = construction_size_1d(structure)
        assert size["species"] == 3 + structure.start + structure.period
        assert size["reactions"] == 1 + structure.start + structure.period

    def test_min_one_from_fig2(self):
        crn = build_1d_crn(lambda x: min(1, x))
        check_exhaustive(crn, lambda x: min(1, x), range(5))


class TestTheorem92Leaderless:
    def test_structure(self):
        crn = build_leaderless_1d_crn(lambda x: 2 * x)
        assert crn.is_output_oblivious()
        assert crn.is_leaderless()

    def test_linear_function(self):
        crn = build_leaderless_1d_crn(lambda x: 2 * x)
        check_exhaustive(crn, lambda x: 2 * x, range(5))

    def test_floor_function(self):
        crn = build_leaderless_1d_crn(lambda x: (3 * x) // 2)
        check_exhaustive(crn, lambda x: (3 * x) // 2, range(6))

    def test_superadditive_with_jump(self):
        # f(x) = 0 for x < 3, 2(x-2) for x >= 3: superadditive, not linear.
        def func(x):
            return 0 if x < 3 else 2 * (x - 2)

        crn = build_leaderless_1d_crn(func)
        report = verify_stable_computation(
            crn, lambda x: func(x[0]), inputs=[(v,) for v in range(7)], exhaustive_limit=8_000
        )
        assert report.passed

    def test_rejects_non_superadditive(self):
        with pytest.raises(ValueError):
            build_leaderless_1d_crn(lambda x: min(1, x))

    def test_rejects_nonzero_at_origin(self):
        with pytest.raises(ValueError):
            build_leaderless_1d_crn(lambda x: x + 1)

    def test_size_formula(self):
        structure = fit_eventually_quilt_affine_1d(lambda x: 3 * x)
        size = construction_size_leaderless(structure)
        crn = build_leaderless_1d_crn(lambda x: 3 * x)
        assert len(crn.reactions) == size["reactions"]
