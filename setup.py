"""Setuptools shim so editable installs work without network access or the wheel package."""

from setuptools import setup

setup()
