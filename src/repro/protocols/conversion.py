"""Reduction of higher-order reactions to at-most-bimolecular form (footnote 5).

The paper's constructions freely use reactions with more than two reactants
(e.g. ``(n+1)X -> nX + W``), noting that such reactions can be converted to
bimolecular form: ``3X -> Y`` becomes ``2X <-> X_2`` and ``X + X_2 -> Y``.
:func:`to_at_most_bimolecular` performs this conversion for an arbitrary CRN,
introducing reversible accumulation complexes for every reactant multiset of
order greater than two.  The converted CRN stably computes the same function
(the reversibility of the accumulation steps ensures no inputs are stranded).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species


def _complex_name(counts: Dict[Species, int]) -> str:
    parts = []
    for sp in sorted(counts, key=lambda s: s.name):
        count = counts[sp]
        parts.append(sp.name if count == 1 else f"{count}{sp.name}")
    return "cx_" + "_".join(parts)


def to_at_most_bimolecular(crn: CRN) -> CRN:
    """Convert every reaction of order > 2 into a chain of (at most) bimolecular reactions.

    Each high-order reaction ``R -> P`` is replaced by a sequence of reversible
    accumulation steps that gather the reactant multiset into a single complex
    species two molecules at a time, followed by a final irreversible step
    releasing the products.  Reactions of order <= 2 are kept unchanged.
    """
    new_reactions: List[Reaction] = []
    complexes_created: Dict[Tuple[Tuple[Species, int], ...], Species] = {}

    for rxn in crn.reactions:
        if rxn.order() <= 2:
            new_reactions.append(rxn)
            continue

        # Flatten the reactant multiset into an ordered list of molecules.
        molecules: List[Species] = []
        for sp, count in sorted(rxn.reactants.counts.items(), key=lambda kv: kv[0].name):
            molecules.extend([sp] * count)

        # Accumulate molecules two at a time into growing complex species.
        accumulated: Dict[Species, int] = {}
        for molecule in molecules[:2]:
            accumulated[molecule] = accumulated.get(molecule, 0) + 1
        key = tuple(sorted(accumulated.items(), key=lambda kv: kv[0].name))
        if key not in complexes_created:
            complexes_created[key] = Species(_complex_name(accumulated))
            complex_sp = complexes_created[key]
            new_reactions.append(
                Reaction(Expression(dict(accumulated)), complex_sp, name=f"assemble-{complex_sp.name}")
            )
            new_reactions.append(
                Reaction(complex_sp, Expression(dict(accumulated)), name=f"disassemble-{complex_sp.name}")
            )
        current_complex = complexes_created[key]
        current_contents = dict(accumulated)

        for molecule in molecules[2:-1]:
            current_contents[molecule] = current_contents.get(molecule, 0) + 1
            key = tuple(sorted(current_contents.items(), key=lambda kv: kv[0].name))
            if key not in complexes_created:
                complexes_created[key] = Species(_complex_name(current_contents))
                next_complex = complexes_created[key]
                new_reactions.append(
                    Reaction(
                        Expression({current_complex: 1, molecule: 1}),
                        next_complex,
                        name=f"assemble-{next_complex.name}",
                    )
                )
                new_reactions.append(
                    Reaction(
                        next_complex,
                        Expression({current_complex: 1, molecule: 1}),
                        name=f"disassemble-{next_complex.name}",
                    )
                )
            current_complex = complexes_created[key]

        # Final step: the complex plus the last molecule react irreversibly to the products.
        new_reactions.append(
            Reaction(
                Expression({current_complex: 1, molecules[-1]: 1}),
                rxn.products,
                rate=rxn.rate,
                name=rxn.name or "final-step",
            )
        )

    return CRN(
        new_reactions,
        crn.input_species,
        crn.output_species,
        leader=crn.leader,
        name=(crn.name + "+bimolecular") if crn.name else "bimolecular",
    )
