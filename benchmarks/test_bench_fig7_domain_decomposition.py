"""Figure 7 benchmark: domain decomposition of the three-region example.

Regenerates the content of Fig. 7: the three regions (D1, U, D2), the unique
quilt-affine extensions ``g1 = x1 + 1`` and ``g2 = x2 + 1`` from the determined
regions, the averaged extension ``gU = ⌈(x1 + x2)/2⌉`` from the
under-determined diagonal, and the final eventually-min representation.  The
counterexample of Eq. (2) is decomposed alongside to show where the procedure
(correctly) fails.
"""

from fractions import Fraction

import pytest

from repro.core.decomposition import decompose
from repro.functions.paper_examples import eq2_counterexample_spec, fig7_spec


def test_fig7_decomposition(benchmark):
    spec = fig7_spec()

    def run():
        return decompose(spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.succeeded()
    print("\n[Fig. 7] decomposition summary:")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")
    determined = [item.extension for item in result.extensions if item.determined]
    averaged = [item.extension for item in result.extensions if not item.determined]
    print("  determined extensions : " + "; ".join(str(g) for g in determined))
    print("  averaged extension    : " + "; ".join(str(g) for g in averaged))
    assert {g.gradient for g in determined} == {(Fraction(1), Fraction(0)), (Fraction(0), Fraction(1))}
    assert averaged[0].gradient == (Fraction(1, 2), Fraction(1, 2))
    assert result.eventually_min.agrees_with(spec.func)


def test_fig7_counterexample_eq2(benchmark):
    spec = eq2_counterexample_spec()

    def run():
        return decompose(spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.succeeded()
    print(f"\n[Eq. 2] decomposition fails as predicted: {result.failure_reason}")
