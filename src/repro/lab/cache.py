"""Content-addressed on-disk cache for campaign cell results.

A cell's cache key is a SHA-256 over the *content* that determines its result:

* the **spec fingerprint** — the function tabulated on a bounded grid plus its
  name and dimension (callables cannot be hashed, but their values can);
* the construction **strategy** (different strategies build different CRNs);
* the **input** vector;
* the full :meth:`~repro.api.config.RunConfig.cache_key` (trials, step budget,
  quiescence window, seed, engine — seeded runs are deterministic, so the seed
  is part of the content);
* the **engine** name (also in the config, kept explicit for readability);
* a **code-version salt** (:data:`CODE_SALT`) bumped whenever simulation
  semantics change, so stale results can never be replayed across a
  behavioural change.

Only seeded, successful cells are cached: an unseeded run is *meant* to be
fresh entropy, and an error may be environmental.  Values are the
:meth:`~repro.lab.store.CellResult.deterministic_dict` payload, stored one
JSON file per key, sharded by the first two hex digits.  Writes are atomic
(temp file + ``os.replace``), so a concurrent or killed writer can never
publish a torn entry; corrupted entries read as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Optional

from repro.core.specs import FunctionSpec
from repro.obs.metrics import MetricsRegistry, global_registry

#: Bump when a change to the simulators / constructions invalidates old results.
#: "repro-lab-4": the "nrm" next-reaction engine landed.  Existing engines'
#: seeded streams are locked bit for bit (tests/test_kernel.py), but the
#: engine axis gained a value; the salt keeps any pre-NRM cache from ever
#: answering for (or colliding with) a run that could now resolve to "nrm".
CODE_SALT = "repro-lab-5"

#: Side length of the grid a spec is tabulated on for fingerprinting.
FINGERPRINT_BOUND = 5

#: Default cache root (relative to the working directory; see .gitignore).
DEFAULT_CACHE_DIR = ".repro-cache"


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(spec: FunctionSpec, bound: int = FINGERPRINT_BOUND) -> str:
    """A content hash of a spec: name, dimension, and values on ``[0, bound)^d``.

    Two specs with the same name but different behaviour (an edited catalog
    entry, a differently-parameterized factory) fingerprint differently, so
    cached results can never be attributed to the wrong function.
    """
    values = [[list(x), spec(x)] for x in spec.grid(bound)]
    blob = _canonical_json(
        {"name": spec.name, "dimension": spec.dimension, "bound": bound, "values": values}
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cell_cache_key(
    spec_fingerprint_hex: str,
    strategy: str,
    input_value,
    engine: str,
    config_key: str,
    salt: str = CODE_SALT,
) -> str:
    """The content address of one cell's result (see the module docstring)."""
    blob = _canonical_json(
        {
            "spec_fp": spec_fingerprint_hex,
            "strategy": strategy,
            "input": [int(v) for v in input_value],
            "engine": engine,
            "config": config_key,
            "salt": salt,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed key -> JSON-payload store under a root directory.

    Every instance reports into a :class:`repro.obs.metrics.MetricsRegistry`
    (the shared default unless one is passed — the server passes its own so
    ``GET /v1/metrics`` and ``/v1/stats`` read the same series):

    * ``repro_result_cache_requests_total{result="hit"|"miss"}`` — ``get``
      outcomes;
    * ``repro_result_cache_get_seconds`` / ``repro_result_cache_put_seconds``
      — lookup and publish (write + fsync + rename) latency histograms, the
      numbers that expose a cache root on slow storage.
    """

    def __init__(
        self, root: str = DEFAULT_CACHE_DIR, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = str(root)
        self.registry = registry if registry is not None else global_registry()
        requests = self.registry.counter(
            "repro_result_cache_requests_total",
            "ResultCache.get outcomes by result (hit/miss).",
            labels=("result",),
        )
        self._hits = requests.labels(result="hit")
        self._misses = requests.labels(result="miss")
        self._get_seconds = self.registry.histogram(
            "repro_result_cache_get_seconds", "ResultCache.get latency."
        )
        self._put_seconds = self.registry.histogram(
            "repro_result_cache_put_seconds",
            "ResultCache.put latency (write + fsync + atomic rename).",
        )

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` (corruption reads as a miss)."""
        start = time.perf_counter()
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            data = None
        finally:
            self._get_seconds.observe(time.perf_counter() - start)
        if not isinstance(data, dict):
            self._misses.inc()
            return None
        self._hits.inc()
        return data

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically and durably publish ``payload`` under ``key``.

        Write-to-temp + ``fsync`` + ``os.replace``: a reader (including a
        *second server process* sharing this root as its memo) can only ever
        observe the old entry, the complete new entry, or a miss — never a
        torn write — and a crash between the fsync and the rename leaves the
        published entry intact.  Last writer wins, which is sound because
        entries are content-addressed: two writers racing on one key are
        writing the same payload.
        """
        start = time.perf_counter()
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=os.path.dirname(path),
            prefix=".tmp-",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._put_seconds.observe(time.perf_counter() - start)

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        count = 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(1 for name in os.listdir(shard_dir) if name.endswith(".json"))
        return count

    def __repr__(self) -> str:
        return f"ResultCache({self.root!r}, entries={len(self)})"
