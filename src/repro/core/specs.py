"""Function specifications: the input to the characterization and constructions.

A :class:`FunctionSpec` wraps a function ``f : N^d -> N`` as a callable plus
whatever structural information is available:

* a semilinear representation (Definition 2.6) — needed by the Section 7
  domain decomposition;
* an eventually-min representation (Theorem 5.2 condition (ii)) — needed by
  the general construction of Lemma 6.2;
* explicit restriction specs for the recursive condition (iii); when absent
  they are derived automatically (by restricting the callable, and by 1D
  fitting or recursive decomposition for their structure);
* a hand-written CRN, when the paper gives one (Fig. 1, Fig. 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crn.network import CRN
from repro.quilt.eventually_min import EventuallyMin
from repro.semilinear.functions import SemilinearFunction


IntPoint = Tuple[int, ...]


@dataclass
class FunctionSpec:
    """A function ``N^d -> N`` plus known structure.

    Attributes
    ----------
    name:
        Human-readable name (used in reports and benchmark output).
    dimension:
        The number of inputs ``d``.
    func:
        The function itself as a callable on integer tuples.
    semilinear:
        Optional explicit semilinear (piecewise-affine) representation.
    eventually_min:
        Optional eventually-min-of-quilt-affine representation (condition (ii)
        of Theorem 5.2).
    known_crn:
        Optional hand-written CRN from the paper that stably computes ``f``.
    restriction_specs:
        Optional explicit specs for the fixed-input restrictions, keyed by
        ``(input index, fixed value)``.
    expected_obliviously_computable:
        Ground-truth label used by tests and benchmarks (None when unknown).
    """

    name: str
    dimension: int
    func: Callable[[Sequence[int]], int]
    semilinear: Optional[SemilinearFunction] = None
    eventually_min: Optional[EventuallyMin] = None
    known_crn: Optional[CRN] = None
    restriction_specs: Dict[Tuple[int, int], "FunctionSpec"] = field(default_factory=dict)
    expected_obliviously_computable: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.dimension < 0:
            raise ValueError("dimension must be nonnegative")

    # -- evaluation -------------------------------------------------------------

    def __call__(self, x: Sequence[int]) -> int:
        x = tuple(int(v) for v in x)
        if len(x) != self.dimension:
            raise ValueError(
                f"{self.name} takes {self.dimension} inputs, got {len(x)}"
            )
        value = int(self.func(x))
        if value < 0:
            raise ValueError(f"{self.name} produced a negative value {value} at {x}")
        return value

    def grid(self, bound: int) -> Iterable[IntPoint]:
        """All integer points with coordinates in ``[0, bound)``."""
        return itertools.product(range(bound), repeat=self.dimension)

    def values_upto(self, bound: int) -> Dict[IntPoint, int]:
        """The function tabulated on the grid ``[0, bound)^d``."""
        return {x: self(x) for x in self.grid(bound)}

    # -- structural checks ----------------------------------------------------------

    def is_nondecreasing_upto(self, bound: int) -> bool:
        """Check the nondecreasing property on all unit steps within the bound."""
        for x in self.grid(bound):
            fx = self(x)
            for i in range(self.dimension):
                step = tuple(v + (1 if j == i else 0) for j, v in enumerate(x))
                if max(step, default=0) < bound and self(step) < fx:
                    return False
        return True

    def is_superadditive_upto(self, bound: int) -> bool:
        """Check superadditivity ``f(x) + f(y) <= f(x + y)`` on the bounded grid."""
        points = list(self.grid(bound))
        for x in points:
            for y in points:
                total = tuple(a + b for a, b in zip(x, y))
                if self(x) + self(y) > self(total):
                    return False
        return True

    def agrees_with_semilinear_upto(self, bound: int) -> bool:
        """Check the callable against the semilinear representation, if present."""
        if self.semilinear is None:
            return True
        return all(self.semilinear(x) == self(x) for x in self.grid(bound))

    def agrees_with_eventually_min(self, width: Optional[int] = None) -> bool:
        """Check the callable against the eventually-min representation, if present."""
        if self.eventually_min is None:
            return True
        return self.eventually_min.agrees_with(self.func, width=width)

    # -- restrictions (condition (iii) of Theorem 5.2) ---------------------------------

    def restricted_callable(self, index: int, value: int) -> Callable[[Sequence[int]], int]:
        """The callable for ``f`` with input ``index`` fixed to ``value``.

        The returned callable takes ``d - 1`` inputs (the remaining coordinates
        in order).
        """
        if not 0 <= index < self.dimension:
            raise ValueError(f"index {index} out of range for dimension {self.dimension}")
        value = int(value)

        def restricted(y: Sequence[int]) -> int:
            y = tuple(int(v) for v in y)
            if len(y) != self.dimension - 1:
                raise ValueError(
                    f"restriction of {self.name} takes {self.dimension - 1} inputs, got {len(y)}"
                )
            full = list(y[:index]) + [value] + list(y[index:])
            return self(full)

        return restricted

    def restriction(self, index: int, value: int) -> "FunctionSpec":
        """The spec of the fixed-input restriction ``f_[x(i) -> j]``.

        Uses an explicitly provided restriction spec when available, otherwise
        wraps the restricted callable with no extra structure (structure can be
        derived later by fitting / decomposition).
        """
        key = (index, int(value))
        if key in self.restriction_specs:
            return self.restriction_specs[key]
        return FunctionSpec(
            name=f"{self.name}[x{index + 1}={value}]",
            dimension=self.dimension - 1,
            func=self.restricted_callable(index, value),
            expected_obliviously_computable=self.expected_obliviously_computable,
        )

    # -- convenience constructors ---------------------------------------------------------

    @staticmethod
    def from_callable(
        name: str,
        dimension: int,
        func: Callable[[Sequence[int]], int],
        **kwargs,
    ) -> "FunctionSpec":
        """Build a spec from just a callable (structure added via keyword arguments)."""
        return FunctionSpec(name=name, dimension=dimension, func=func, **kwargs)

    def with_eventually_min(self, eventually_min: EventuallyMin) -> "FunctionSpec":
        """A copy of this spec with an eventually-min representation attached."""
        return FunctionSpec(
            name=self.name,
            dimension=self.dimension,
            func=self.func,
            semilinear=self.semilinear,
            eventually_min=eventually_min,
            known_crn=self.known_crn,
            restriction_specs=dict(self.restriction_specs),
            expected_obliviously_computable=self.expected_obliviously_computable,
        )

    def __repr__(self) -> str:
        structure = []
        if self.semilinear is not None:
            structure.append("semilinear")
        if self.eventually_min is not None:
            structure.append("eventually-min")
        if self.known_crn is not None:
            structure.append("known-CRN")
        return f"FunctionSpec({self.name!r}, d={self.dimension}, structure={structure})"
