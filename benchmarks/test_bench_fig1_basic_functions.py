"""Figure 1 benchmark: the CRNs for 2x, min(x1,x2) and max(x1,x2).

Regenerates the content of Fig. 1: each CRN stably computes its function, the
``2x`` and ``min`` CRNs never retract output, and the ``max`` CRN transiently
overshoots (the quantity the composition benchmark then shows being locked in
by a downstream consumer).
"""

import pytest

from repro.functions.catalog import double_spec, maximum_spec, minimum_spec
from repro.verify.overproduction import measure_overshoot
from repro.verify.stable import verify_stable_computation


FIG1_ROWS = [
    (double_spec, [(0,), (3,), (6,)]),
    (minimum_spec, [(0, 2), (3, 1), (4, 4)]),
    (maximum_spec, [(0, 2), (3, 1), (4, 4)]),
]


@pytest.mark.parametrize("spec_factory, inputs", FIG1_ROWS, ids=lambda v: getattr(v, "__name__", ""))
def test_fig1_stable_computation(benchmark, spec_factory, inputs):
    spec = spec_factory()

    def run():
        return verify_stable_computation(spec.known_crn, spec.func, inputs=inputs)

    report = benchmark(run)
    assert report.passed
    print(f"\n[Fig. 1] {spec.name}: output-oblivious={spec.known_crn.is_output_oblivious()} "
          f"verified on {len(inputs)} inputs")


def test_fig1_overshoot_series(benchmark):
    """The qualitative series behind Fig. 1 / Section 1.2: max overshoots, min does not."""

    def run():
        max_spec = maximum_spec()
        min_spec = minimum_spec()
        return {
            "max": measure_overshoot(max_spec.known_crn, max_spec.func, [(3, 3), (5, 5)], trials=6, seed=1),
            "min": measure_overshoot(min_spec.known_crn, min_spec.func, [(3, 3), (5, 5)], trials=6, seed=1),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[Fig. 1] overshoot series (input -> excess output observed):")
    for name, summary in result.items():
        print(f"  {name}: {summary['per_input']}   max overshoot = {summary['max_overshoot']}")
    assert result["max"]["max_overshoot"] >= 1
    assert result["min"]["max_overshoot"] == 0
