"""The asyncio HTTP server: connection loop, lifecycle, signals.

:class:`ReproServer` wires the pieces together — a ``ProcessPoolExecutor``
for the simulation work (the event loop never runs an engine), the shared
on-disk :class:`~repro.lab.cache.ResultCache`, the
:class:`~repro.serve.jobs.JobManager`, and :mod:`repro.serve.handlers`
routing — behind ``asyncio.start_server``.  HTTP/1.1 keep-alive is supported;
parsing and framing live in :mod:`repro.serve.protocol`.

Three ways to run it:

* ``python -m repro serve --host --port --workers`` — the CLI foreground
  server; SIGTERM/SIGINT trigger a graceful drain (stop accepting, cancel
  jobs, shut the pool down) and a zero exit;
* ``async with ReproServer(...) as server:`` — embedded in an existing loop;
* ``with ServerThread(...) as server:`` — a real server on a background
  thread (port 0 picks a free port), for tests and notebooks.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.api.config import RunConfig
from repro.lab.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.serve.handlers import ServerState, dispatch
from repro.serve.jobs import JobManager
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import ApiError, Response, read_request


class ReproServer:
    """One simulation-as-a-service instance.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        ``self.port`` after :meth:`start`).
    workers:
        Process-pool size for simulation work.  ``0`` runs cells on the event
        loop's default thread pool instead — slower under load (the GIL) but
        useful where ``multiprocessing`` is unavailable.
    cache_dir:
        Root of the shared :class:`~repro.lab.cache.ResultCache` memo;
        ``None`` disables caching (every request simulates).
    config:
        Default :class:`~repro.api.config.RunConfig`; request ``config``
        objects override it field-wise.
    queue_limit:
        Backpressure bound: the maximum number of unfinished job cells across
        all live jobs before ``POST /v1/jobs`` answers 429.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8421,
        workers: int = 2,
        cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
        config: Optional[RunConfig] = None,
        queue_limit: int = 10_000,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.cache_dir = cache_dir
        self.config = config if config is not None else RunConfig()
        self.queue_limit = queue_limit
        self.state: Optional[ServerState] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._connections: set = set()

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> None:
        from repro import __version__

        self._pool = ProcessPoolExecutor(max_workers=self.workers) if self.workers else None
        metrics = ServerMetrics(version=__version__)
        # The cache reports into the server's registry, so its hit/miss and
        # fsync-latency series show up on GET /v1/metrics alongside the
        # request counters.
        cache = (
            ResultCache(self.cache_dir, registry=metrics.registry)
            if self.cache_dir is not None
            else None
        )
        jobs = JobManager(self._pool, cache, metrics, queue_limit=self.queue_limit)
        self.state = ServerState(
            config=self.config,
            cache=cache,
            pool=self._pool,
            metrics=metrics,
            jobs=jobs,
            version=__version__,
            workers=self.workers,
        )
        self._server = await asyncio.start_server(self._serve_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: stop accepting, cancel jobs, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        if self.state is not None:
            await self.state.jobs.shutdown()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the connection loop --------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ApiError as exc:
                    writer.write(Response.from_error(exc).encode(keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return

                endpoint = f"{request.method} {request.path}"
                started = time.perf_counter()
                try:
                    response = await dispatch(self.state, request)
                except ApiError as exc:
                    response = Response.from_error(exc)
                except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the server
                    response = Response.from_error(
                        ApiError(500, f"internal error: {type(exc).__name__}: {exc}")
                    )
                if response.endpoint:
                    endpoint = response.endpoint
                if self.state is not None:
                    self.state.metrics.record_request(
                        endpoint, response.status, time.perf_counter() - started
                    )
                if response.stream is not None:
                    # Close-delimited streaming: headers first, then chunks as
                    # they are produced, draining per chunk so a slow client
                    # backpressures the generator instead of buffering the
                    # body server-side.  The connection cannot be kept alive
                    # (no Content-Length), so this request ends it.
                    writer.write(response.encode_stream_head())
                    await writer.drain()
                    for chunk in response.stream:
                        writer.write(chunk)
                        await writer.drain()
                    return
                keep_alive = request.keep_alive
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- foreground entry point (the CLI) ---------------------------------------------

    def run(self, announce=print) -> int:
        """Serve until SIGTERM/SIGINT; returns 0 after a graceful drain."""

        async def _main() -> int:
            stop_event = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without loop signal handlers
            await self.start()
            if announce is not None:
                announce(f"repro.serve listening on {self.address} (workers={self.workers})")
                sys.stdout.flush()
            await stop_event.wait()
            if announce is not None:
                announce("repro.serve draining: cancelling jobs, shutting the pool down")
            await self.stop()
            return 0

        try:
            return asyncio.run(_main())
        except KeyboardInterrupt:
            return 0


class ServerThread:
    """A live :class:`ReproServer` on a daemon thread (for tests, notebooks).

    ::

        with ServerThread(port=0, workers=2, cache_dir=tmp) as server:
            client = ServeClient(port=server.port)
            ...

    The context exit performs the same graceful drain as SIGTERM.
    """

    def __init__(self, **kwargs) -> None:
        self.server = ReproServer(**kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("repro.serve thread failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("repro.serve failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            try:
                self._loop.run_until_complete(self.server.start())
            except BaseException as exc:  # noqa: BLE001 — surfaced to __enter__
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            self._loop.run_forever()
        finally:
            self._loop.close()

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), loop)
        try:
            future.result(timeout=30)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)
