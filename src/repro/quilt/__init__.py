"""Quilt-affine functions (Definition 5.1) and eventually-min representations.

A *quilt-affine* function ``g : N^d -> Z`` is a nondecreasing function of the
form ``g(x) = ∇g · x + B(x mod p)`` where ``∇g`` is a nonnegative rational
gradient and ``B`` is a periodic rational offset on the congruence classes
``Z^d / p Z^d``.  These are the intrinsic building blocks of the paper's main
characterization: an obliviously-computable function is eventually the minimum
of finitely many quilt-affine functions (Theorem 5.2 / 7.1).
"""

from repro.quilt.quilt_affine import QuiltAffine, Residue, residue_of, all_residues
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.fitting import (
    EventuallyPeriodic1D,
    fit_eventually_quilt_affine_1d,
    fit_quilt_affine,
)

__all__ = [
    "QuiltAffine",
    "Residue",
    "residue_of",
    "all_residues",
    "EventuallyMin",
    "EventuallyPeriodic1D",
    "fit_eventually_quilt_affine_1d",
    "fit_quilt_affine",
]
