"""Simulator throughput benchmarks: scalar loops vs. the vectorized batch engine.

Not a paper figure, but the substrate ablation DESIGN.md calls out: reaction
events per second for the scalar Gillespie/fair schedulers and the numpy batch
engines head-to-head across population sizes up to 10^5, plus the cost of
exhaustive reachability-based verification versus randomized simulation.

Run with ``PYTHONPATH=src python -m pytest benchmarks --benchmark`` (the suite
is skipped without the flag).
"""

import math
import random
import time

import pytest

from conftest import mean_seconds
from repro.core.characterization import build_crn_for
from repro.crn.reachability import check_stable_computation_at
from repro.functions.catalog import minimum_spec
from repro.functions.extended import weighted_floor_spec
from repro.sim._reference import ReferenceGillespieSimulator
from repro.sim.engine import BatchFairEngine, BatchGillespieEngine, BatchTauLeapEngine
from repro.sim.fair import FairScheduler
from repro.sim.gillespie import GillespieSimulator
from repro.sim.kernel import (
    GillespiePolicy,
    NextReactionPolicy,
    SimulatorCore,
    TauLeapPolicy,
)
from repro.verify.stable import verify_stable_computation


SCALAR_POPULATIONS = [10, 100, 1000, 10_000]
BATCH_POPULATIONS = [1000, 10_000, 100_000]
BATCH = 64


@pytest.mark.parametrize("population", SCALAR_POPULATIONS)
def test_gillespie_throughput(benchmark, bench_record, population):
    crn = minimum_spec().known_crn

    def run():
        simulator = GillespieSimulator(crn, rng=random.Random(1))
        return simulator.run_on_input((population, population))

    result = benchmark(run)
    assert result.silent
    assert result.output_count(crn) == population
    bench_record(
        f"scalar/gillespie/pop{2 * population}",
        2 * population,
        mean_seconds(benchmark),
        result.steps,
    )


@pytest.mark.parametrize("population", SCALAR_POPULATIONS)
def test_fair_scheduler_throughput(benchmark, bench_record, population):
    crn = minimum_spec().known_crn

    def run():
        scheduler = FairScheduler(crn, rng=random.Random(1))
        return scheduler.run_on_input((population, population))

    result = benchmark(run)
    assert result.silent
    assert crn.output_count(result.final_configuration) == population
    bench_record(
        f"scalar/fair/pop{2 * population}",
        2 * population,
        mean_seconds(benchmark),
        result.steps,
    )


@pytest.mark.parametrize("population", BATCH_POPULATIONS)
def test_batch_gillespie_throughput(benchmark, bench_record, population):
    """Head-to-head counterpart of ``test_gillespie_throughput``: 64 rows at once.

    Per-event cost is what to compare (each call fires ``BATCH`` x population
    reactions, the scalar benchmark fires population).
    """
    compiled = minimum_spec().known_crn.compiled()

    def run():
        engine = BatchGillespieEngine(compiled, seed=1)
        return engine.run_on_input((population, population), batch=BATCH)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.silent.all()
    assert (result.output_counts() == population).all()
    bench_record(
        f"batch/gillespie/pop{2 * population}",
        2 * population,
        mean_seconds(benchmark),
        result.total_steps(),
        batch=BATCH,
    )


@pytest.mark.parametrize("population", BATCH_POPULATIONS)
def test_batch_fair_throughput(benchmark, bench_record, population):
    """Head-to-head counterpart of ``test_fair_scheduler_throughput``."""
    compiled = minimum_spec().known_crn.compiled()

    def run():
        engine = BatchFairEngine(compiled, seed=1)
        return engine.run_on_input((population, population), batch=BATCH)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.silent.all()
    assert (result.output_counts() == population).all()
    bench_record(
        f"batch/fair/pop{2 * population}",
        2 * population,
        mean_seconds(benchmark),
        result.total_steps(),
        batch=BATCH,
    )


def test_vectorized_speedup_at_population_1e4(bench_record):
    """Acceptance gate: >= 10x event throughput over the dict-backed scalar
    loop at 10^4 (the baseline this gate was originally calibrated against,
    now preserved verbatim in ``repro.sim._reference`` — the production
    scalar simulator is the much faster kernel, benchmarked separately in
    ``test_scalar_kernel_speedup_at_population_1e4``).

    Both sides get a warm-up and the best of three timed samples so one GC
    pause or CPU-contention spike cannot flip the gate either way.
    """
    population = 10_000
    crn = minimum_spec().known_crn
    compiled = crn.compiled()

    def best_of(runs, run_once):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = run_once()
            best = min(best, time.perf_counter() - start)
        return best, result

    ReferenceGillespieSimulator(crn, rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    scalar_time, scalar_result = best_of(
        3,
        lambda: ReferenceGillespieSimulator(crn, rng=random.Random(1)).run_on_input(
            (population, population)
        ),
    )
    scalar_events_per_sec = scalar_result.steps / scalar_time

    engine = BatchGillespieEngine(compiled, seed=1)
    engine.run_on_input((population // 10, population // 10), batch=8)  # warm-up
    batch_time, batch_result = best_of(
        3, lambda: engine.run_on_input((population, population), batch=256)
    )
    batch_events_per_sec = batch_result.total_steps() / batch_time

    assert scalar_result.silent and batch_result.silent.all()
    bench_record(
        "speedup-gate/scalar-gillespie/pop20000",
        2 * population,
        scalar_time,
        scalar_result.steps,
    )
    bench_record(
        "speedup-gate/batch-gillespie/pop20000",
        2 * population,
        batch_time,
        batch_result.total_steps(),
        batch=256,
    )
    speedup = batch_events_per_sec / scalar_events_per_sec
    print(
        f"\n[speedup] scalar {scalar_events_per_sec:,.0f} ev/s, "
        f"vectorized {batch_events_per_sec:,.0f} ev/s -> {speedup:.1f}x"
    )
    assert speedup >= 10.0


def test_scalar_kernel_speedup_at_population_1e4(bench_record):
    """Acceptance gate: the kernel-backed scalar Gillespie simulator is >= 3x
    faster than the frozen dict-backed loop at population 10^4.

    This is the before/after record for the scalar-kernel rebase: the
    "before" side runs the pre-kernel implementation preserved verbatim in
    ``repro.sim._reference``, the "after" side the kernel shim, on identical
    seeds (the two produce bit-identical trajectories, so the comparison is
    event-for-event).  Both get a warm-up and the best of three samples.
    """
    population = 10_000
    crn = minimum_spec().known_crn
    crn.compiled()  # compile outside the timed region, as a caller would

    def best_of(runs, run_once):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = run_once()
            best = min(best, time.perf_counter() - start)
        return best, result

    ReferenceGillespieSimulator(crn, rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    legacy_time, legacy_result = best_of(
        3,
        lambda: ReferenceGillespieSimulator(crn, rng=random.Random(1)).run_on_input(
            (population, population)
        ),
    )
    GillespieSimulator(crn, rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    kernel_time, kernel_result = best_of(
        3,
        lambda: GillespieSimulator(crn, rng=random.Random(1)).run_on_input(
            (population, population)
        ),
    )

    assert legacy_result.silent and kernel_result.silent
    assert kernel_result.final_configuration == legacy_result.final_configuration
    assert kernel_result.steps == legacy_result.steps
    bench_record(
        "scalar-kernel/legacy-dict-loop/gillespie/pop20000",
        2 * population,
        legacy_time,
        legacy_result.steps,
    )
    bench_record(
        "scalar-kernel/kernel/gillespie/pop20000",
        2 * population,
        kernel_time,
        kernel_result.steps,
    )
    speedup = legacy_time / kernel_time
    print(
        f"\n[scalar-kernel] legacy {legacy_result.steps / legacy_time:,.0f} ev/s, "
        f"kernel {kernel_result.steps / kernel_time:,.0f} ev/s -> {speedup:.1f}x"
    )
    assert speedup >= 3.0


def test_tau_leap_step_collapse_at_population_1e5(bench_record):
    """Acceptance gate: tau-leaping needs >= 5x fewer scheduler iterations
    than exact SSA at population 10^5, with the exact answer intact.

    This is the before/after record for the tau-leaping PR: the "before"
    side is the exact kernel Gillespie loop (one select per event — the
    regime where exact SSA at 10^5+ stops being practical), the "after" side
    fires Poisson batches under the default epsilon=0.03 error knob.  The
    recorded ``steps`` are *scheduler iterations* (events for the exact side,
    leaps/bursts for tau), so steps/sec measures how fast each algorithm
    advances through its own schedule; both sides fire the same 10^5 reaction
    events and end in the same silent configuration.
    """
    population = 100_000
    crn = minimum_spec().known_crn
    crn.compiled()  # compile outside the timed region

    def best_of(runs, run_once):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = run_once()
            best = min(best, time.perf_counter() - start)
        return best, result

    def run_exact():
        core = SimulatorCore(crn, GillespiePolicy(), rng=random.Random(1))
        return core.run_on_input((population, population), max_steps=10_000_000)

    def run_tau():
        core = SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(1))
        return core.run_on_input((population, population), max_steps=10_000_000)

    SimulatorCore(crn, GillespiePolicy(), rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    exact_time, exact_result = best_of(3, run_exact)
    SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    tau_time, tau_result = best_of(3, run_tau)

    assert exact_result.silent and tau_result.silent
    assert crn.output_count(exact_result.final_configuration) == population
    assert crn.output_count(tau_result.final_configuration) == population
    assert exact_result.steps == tau_result.steps == population

    bench_record(
        "tau-leap/exact-gillespie/pop200000",
        2 * population,
        exact_time,
        exact_result.selections,
    )
    bench_record(
        "tau-leap/tau/pop200000",
        2 * population,
        tau_time,
        tau_result.selections,
        events=tau_result.steps,
        epsilon=0.03,
    )
    collapse = exact_result.selections / tau_result.selections
    print(
        f"\n[tau-leap] exact {exact_result.selections:,} selections "
        f"({exact_time:.3f}s), tau {tau_result.selections:,} selections "
        f"({tau_time:.3f}s) -> {collapse:.0f}x step-count collapse, "
        f"{exact_time / tau_time:.1f}x wall speedup"
    )
    assert collapse >= 5.0
    # The exact engine's seeded stream must be untouched by the tau machinery
    # (the bit-for-bit lock, restated at benchmark scale).
    replay = GillespieSimulator(crn, rng=random.Random(1)).run_on_input(
        (population, population), max_steps=10_000_000
    )
    assert replay.final_configuration == exact_result.final_configuration
    assert replay.steps == exact_result.steps


def test_batch_tau_throughput_compounds_scalar_tau(bench_record):
    """Acceptance gate: tau-vec sustains >= 10x the reaction-event throughput
    of scalar tau at population 10^5 with a batch of 512 trials.

    This is the before/after record for the batched tau-leaping PR, measured
    in the engine's recommended operating regime: large populations draining
    under leaps (a ``max_steps`` budget of half the population stops both
    sides before the shared ``n_critical`` rule degrades the tail to exact
    stepping — the leap phase is precisely what the batch engine
    accelerates, and its ``min_recommended_population`` floor tells callers
    to keep it there).  Unlike the ``tau-leap/*`` records (which store
    scheduler iterations as ``steps``), both ``batch-tau/*`` records store
    *reaction events* as ``steps`` so ``steps_per_sec`` is events/sec and
    the CI bench-compare leg gates the actual throughput; the leap-round
    counts ride along as ``selections``.
    """
    population = 100_000
    budget = population // 2
    batch = 512
    crn = minimum_spec().known_crn
    compiled = crn.compiled()  # compile outside the timed region

    def best_of(runs, run_once):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = run_once()
            best = min(best, time.perf_counter() - start)
        return best, result

    def run_scalar():
        core = SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(1))
        return core.run_on_input((population, population), max_steps=budget)

    def run_batch():
        engine = BatchTauLeapEngine(compiled, seed=1)
        return engine.run_on_input(
            (population, population), batch=batch, max_steps=budget
        )

    SimulatorCore(crn, TauLeapPolicy(), rng=random.Random(1)).run_on_input(
        (population // 10, population // 10)
    )  # warm-up
    scalar_time, scalar_result = best_of(3, run_scalar)
    BatchTauLeapEngine(compiled, seed=1).run_on_input(
        (population // 10, population // 10), batch=batch
    )  # warm-up
    batch_time, batch_result = best_of(3, run_batch)

    # Both sides stop on the step budget (overshooting by at most one leap)
    # with the population still deep in the leap regime.
    assert scalar_result.steps >= budget
    assert (batch_result.steps >= budget).all()
    assert (batch_result.counts >= 0).all()

    scalar_events = scalar_result.steps
    batch_events = int(batch_result.steps.sum())
    bench_record(
        f"batch-tau/scalar-tau/pop{2 * population}",
        2 * population,
        scalar_time,
        scalar_events,
        selections=scalar_result.selections,
        epsilon=0.03,
    )
    bench_record(
        f"batch-tau/tau-vec/pop{2 * population}",
        2 * population,
        batch_time,
        batch_events,
        selections=batch_result.stats.selections,
        batch=batch,
        epsilon=0.03,
    )
    scalar_rate = scalar_events / scalar_time
    batch_rate = batch_events / batch_time
    speedup = batch_rate / scalar_rate
    print(
        f"\n[batch-tau] scalar tau {scalar_events:,} events "
        f"({scalar_time:.3f}s, {scalar_rate:,.0f} ev/s), tau-vec x{batch} "
        f"{batch_events:,} events ({batch_time:.3f}s, {batch_rate:,.0f} ev/s) "
        f"-> {speedup:.1f}x event throughput"
    )
    assert speedup >= 10.0
    # The scalar tau engine's seeded stream must be untouched by the batched
    # machinery (the bit-for-bit lock, restated at benchmark scale).
    replay = SimulatorCore(
        crn, TauLeapPolicy(), rng=random.Random(1)
    ).run_on_input((population, population), max_steps=budget)
    assert replay.final_configuration == scalar_result.final_configuration
    assert replay.steps == scalar_result.steps
    assert replay.selections == scalar_result.selections


def test_nrm_propensity_recompute_collapse(bench_record):
    """Acceptance gate: Gibson-Bruck recomputes >= 2x fewer propensities per
    step than the direct method on a general-construction network with R >= 30.

    This is the before/after record for the NRM PR on the workload it targets:
    the Lemma 6.2 general construction for ``floor((2x1+3x2)/4)`` has 38
    reactions whose dependency graph is sparse, so the direct method's
    whole-vector sum per select dominates while NRM touches only the fired
    reaction's dependents.  Both sides count propensity evaluations/reads via
    the steppers' ``propensity_ops`` counter (the direct side is counted
    conservatively: only the sum pass, not the selection scan).  Wall time is
    recorded for the regression guard but the gate is the per-step ratio,
    which no GC pause can flip.
    """
    spec = weighted_floor_spec()
    crn = build_crn_for(spec, strategy="general")
    compiled = crn.compiled()
    assert compiled.n_reactions >= 30, (
        "the gate is only meaningful on a wide network; the general "
        f"construction shrank to R={compiled.n_reactions}"
    )
    x = (3_000, 2_000)  # ~16k steps to silence
    max_steps = 20_000

    def drive(policy, seed):
        stepper = policy.bind(compiled, random.Random(seed))
        counts = list(compiled.encode(crn.initial_configuration(x)))
        stepper.start(counts)
        time_now = 0.0
        steps = 0
        start = time.perf_counter()
        while steps < max_steps:
            j, time_now = stepper.select(time_now, math.inf)
            if j < 0:
                break
            for s, delta in compiled.net_terms[j]:
                counts[s] += delta
            stepper.fired(j, counts)
            steps += 1
        elapsed = time.perf_counter() - start
        return stepper.propensity_ops, steps, elapsed

    drive(NextReactionPolicy(), 1)  # warm-up
    best = {}
    for policy_name, policy in (("direct", GillespiePolicy()), ("nrm", NextReactionPolicy())):
        best[policy_name] = min(
            (drive(policy, seed) for seed in (1, 2, 3)),
            key=lambda triple: triple[2] / max(triple[1], 1),
        )

    direct_ops, direct_steps, direct_time = best["direct"]
    nrm_ops, nrm_steps, nrm_time = best["nrm"]
    assert direct_steps > 1_000 and nrm_steps > 1_000

    population = sum(x)
    bench_record(
        f"nrm-gate/direct/general-weighted-floor/R{compiled.n_reactions}",
        population,
        direct_time,
        direct_steps,
        propensity_ops=direct_ops,
    )
    bench_record(
        f"nrm-gate/nrm/general-weighted-floor/R{compiled.n_reactions}",
        population,
        nrm_time,
        nrm_steps,
        propensity_ops=nrm_ops,
    )
    collapse = (direct_ops / direct_steps) / (nrm_ops / nrm_steps)
    print(
        f"\n[nrm] direct {direct_ops / direct_steps:.1f} recomputes/step, "
        f"nrm {nrm_ops / nrm_steps:.1f} recomputes/step -> {collapse:.1f}x collapse "
        f"on R={compiled.n_reactions} (wall: direct {direct_steps / direct_time:,.0f} ev/s, "
        f"nrm {nrm_steps / nrm_time:,.0f} ev/s)"
    )
    assert collapse >= 2.0


def test_nrm_throughput_general_construction(bench_record):
    """Steps/sec for the full NRM engine loop (SimulatorCore) on the same
    R=38 general-construction workload, recorded for the bench-regression
    guard alongside the direct-method counterpart."""
    spec = weighted_floor_spec()
    crn = build_crn_for(spec, strategy="general")
    crn.compiled()  # compile outside the timed region
    x = (3_000, 2_000)

    def best_of(runs, run_once):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = run_once()
            best = min(best, time.perf_counter() - start)
        return best, result

    def run_nrm():
        core = SimulatorCore(crn, NextReactionPolicy(), rng=random.Random(1))
        return core.run_on_input(x, max_steps=200_000)

    run_nrm()  # warm-up
    nrm_time, nrm_result = best_of(3, run_nrm)
    assert nrm_result.steps > 0
    bench_record(
        f"nrm/general-weighted-floor/pop{sum(x)}",
        sum(x),
        nrm_time,
        nrm_result.steps,
    )
    print(
        f"\n[nrm-throughput] {nrm_result.steps:,} steps in {nrm_time:.3f}s "
        f"-> {nrm_result.steps / nrm_time:,.0f} ev/s"
    )


def test_exhaustive_vs_simulation_verification(benchmark):
    crn = minimum_spec().known_crn

    def run():
        exhaustive = check_stable_computation_at(crn, (6, 6), 6)
        simulated = verify_stable_computation(
            crn, lambda x: min(x), inputs=[(6, 6)], method="simulation", trials=3
        )
        return exhaustive, simulated

    exhaustive, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exhaustive.holds and simulated.passed
    print(f"\n[ablation] exhaustive check explored {exhaustive.reachable_count} configurations; "
          "the randomized check ran 3 fair-scheduler trials")


def test_vectorized_verification_throughput(benchmark):
    """The randomized verification path through ``engine='vectorized'``."""
    crn = minimum_spec().known_crn

    def run():
        return verify_stable_computation(
            crn,
            lambda x: min(x),
            inputs=[(500, 500)],
            method="simulation",
            trials=16,
            engine="vectorized",
        )

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.passed
