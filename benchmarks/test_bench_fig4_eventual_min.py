"""Figure 4 benchmark: an obliviously-computable 2D function and its scaling limit.

Fig. 4a shows the shape Theorem 5.2 allows: arbitrary finite behaviour, 1D
quilt-affine edges, and an eventual min of quilt-affine pieces.  Fig. 4b shows
the ∞-scaling of such a function, which is a continuous obliviously-computable
(min-of-linear) function.  The benchmark classifies the Fig. 4a-style function,
builds its Lemma 6.2 CRN, and compares the numerical scaling against the exact
min-of-gradients limit.
"""

from fractions import Fraction

import pytest

from repro.core.characterization import build_crn_for, check_obliviously_computable
from repro.core.scaling import infinity_scaling, scaling_of_eventually_min
from repro.functions.paper_examples import fig4a_style_spec
from repro.verify.stable import verify_stable_computation


def test_fig4a_characterization_and_construction(benchmark):
    spec = fig4a_style_spec()

    def run():
        verdict = check_obliviously_computable(spec)
        crn = build_crn_for(spec, prefer_known=False)
        return verdict, crn

    verdict, crn = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict.obliviously_computable is True
    assert crn.is_output_oblivious()
    print(f"\n[Fig. 4a] {spec.name}: min of {len(spec.eventually_min.pieces)} quilt-affine pieces "
          f"beyond threshold {spec.eventually_min.threshold}")
    print("  value patch (x2 = 5 down to 0, x1 = 0..5):")
    for x2 in range(5, -1, -1):
        print("   " + " ".join(f"{spec.func((x1, x2)):3d}" for x1 in range(6)))
    print(f"  Lemma 6.2 CRN size: {crn.size()}")
    report = verify_stable_computation(
        crn, spec.func, inputs=[(0, 3), (2, 2), (3, 4)], method="simulation", trials=3
    )
    assert report.passed


def test_fig4b_scaling_limit(benchmark):
    spec = fig4a_style_spec()
    probes = [(1.0, 1.0), (1.0, 2.0), (2.0, 1.0), (0.5, 3.0)]

    def run():
        return {
            point: (
                infinity_scaling(spec.func, point, scale=4_000),
                float(scaling_of_eventually_min(spec.eventually_min, [Fraction(v) for v in point])),
            )
            for point in probes
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[Fig. 4b] scaling limit f̂(z) (numeric estimate vs. exact min of gradients):")
    for point, (numeric, exact) in table.items():
        print(f"  z = {point}: {numeric:.4f} vs {exact:.4f}")
        assert numeric == pytest.approx(exact, abs=2e-2)
