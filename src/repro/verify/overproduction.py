"""Searching for output overproduction (the composability failure mode).

Section 1.2 of the paper: the four-reaction ``max`` CRN can overshoot its
correct output before retracting the excess, which is precisely why renaming
its output into a downstream CRN fails (the downstream CRN may consume the
transient excess and "lock it in").  This module hunts for such overshoots with
an adversarial scheduler biased towards output-producing reactions, and
measures overshoot factors used by the Fig. 6 and composition benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.crn.network import CRN
from repro.sim.fair import FairScheduler, output_producing_bias


@dataclass
class OverproductionWitness:
    """Evidence that a CRN's output can exceed the target value transiently or permanently."""

    input_value: Tuple[int, ...]
    target: int
    max_output_seen: int
    final_output: int
    steps: int

    @property
    def overshoot(self) -> int:
        """How far above the target the output climbed."""
        return max(0, self.max_output_seen - self.target)

    @property
    def permanent(self) -> bool:
        """True if the run *ended* above the target (the excess was never retracted)."""
        return self.final_output > self.target


def find_overproduction(
    crn: CRN,
    func: Callable[[Sequence[int]], int],
    x: Sequence[int],
    trials: int = 20,
    max_steps: int = 200_000,
    seed: Optional[int] = 11,
    bias_strength: float = 25.0,
) -> Optional[OverproductionWitness]:
    """Search for a schedule on input ``x`` whose output exceeds ``func(x)``.

    Returns the worst witness found (largest overshoot), or ``None`` if no run
    ever exceeded the target — which is guaranteed for output-oblivious CRNs
    that stably compute ``func``, since they can never retract output.
    """
    x = tuple(int(v) for v in x)
    target = int(func(x))
    rng = random.Random(seed)
    worst: Optional[OverproductionWitness] = None
    for _ in range(trials):
        scheduler = FairScheduler(
            crn,
            rng=random.Random(rng.getrandbits(64)),
            bias=output_producing_bias(crn, strength=bias_strength),
        )
        result = scheduler.run_on_input(
            x, max_steps=max_steps, quiescence_window=50 * (sum(x) + 2)
        )
        if result.max_output_seen > target:
            witness = OverproductionWitness(
                input_value=x,
                target=target,
                max_output_seen=result.max_output_seen,
                final_output=crn.output_count(result.final_configuration),
                steps=result.steps,
            )
            if worst is None or witness.overshoot > worst.overshoot:
                worst = witness
    return worst


def measure_overshoot(
    crn: CRN,
    func: Callable[[Sequence[int]], int],
    inputs: Sequence[Sequence[int]],
    trials: int = 10,
    seed: Optional[int] = 13,
) -> dict:
    """The maximum overshoot observed across a set of inputs (0 for output-oblivious CRNs)."""
    per_input = {}
    for x in inputs:
        witness = find_overproduction(crn, func, x, trials=trials, seed=seed)
        per_input[tuple(int(v) for v in x)] = witness.overshoot if witness else 0
    return {
        "per_input": per_input,
        "max_overshoot": max(per_input.values(), default=0),
    }
