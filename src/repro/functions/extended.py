"""Additional obliviously-computable functions beyond the paper's worked examples.

These exercise parts of the machinery the paper only mentions in passing:
three-input functions (the characterization is stated for arbitrary ``d``),
weighted floor-of-linear functions, and tropical-style combinations of the
basic building blocks.  All are built with explicit eventually-min
representations so the Lemma 6.2 construction and the scaling-limit machinery
can be applied to them directly.
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction
from typing import List, Sequence

from repro.core.specs import FunctionSpec
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Expression, Species
from repro.quilt.eventually_min import EventuallyMin
from repro.quilt.quilt_affine import QuiltAffine


def minimum_3d_spec() -> FunctionSpec:
    """``min(x1, x2, x3)`` — the natural 3-input generalization of Fig. 1."""
    inputs = tuple(Species(f"X{i + 1}") for i in range(3))
    y = Species("Y")
    crn = CRN(
        [Reaction(Expression({sp: 1 for sp in inputs}), y)], inputs, y, leader=None, name="min3"
    )
    pieces = [
        QuiltAffine.affine(tuple(1 if j == i else 0 for j in range(3)), 0) for i in range(3)
    ]
    return FunctionSpec(
        name="min3",
        dimension=3,
        func=lambda v: min(int(value) for value in v),
        eventually_min=EventuallyMin(pieces, (0, 0, 0), name="min3"),
        known_crn=crn,
        expected_obliviously_computable=True,
    )


def weighted_floor_spec() -> FunctionSpec:
    """``f(x1, x2) = ⌊(2x1 + 3x2)/4⌋`` — a 2D floor-of-linear (quilt-affine, period 4)."""
    quilt = QuiltAffine.floor_linear((2, 3), 4, name="floor((2x1+3x2)/4)")
    return FunctionSpec(
        name="floor((2x1+3x2)/4)",
        dimension=2,
        func=lambda v: (2 * int(v[0]) + 3 * int(v[1])) // 4,
        eventually_min=EventuallyMin([quilt], (0, 0), name="floor((2x1+3x2)/4)"),
        expected_obliviously_computable=True,
    )


def capped_sum_spec(cap: int = 4) -> FunctionSpec:
    """``f(x1, x2) = min(x1 + x2, cap)`` — a 2D plateau function (min of affine pieces)."""
    if cap < 0:
        raise ValueError("the cap must be nonnegative")
    pieces = [QuiltAffine.affine((1, 1), 0, name="x1+x2"), QuiltAffine.affine((0, 0), cap, name=f"{cap}")]
    return FunctionSpec(
        name=f"min(x1+x2,{cap})",
        dimension=2,
        func=lambda v: min(int(v[0]) + int(v[1]), cap),
        eventually_min=EventuallyMin(pieces, (0, 0), name=f"min(x1+x2,{cap})"),
        expected_obliviously_computable=True,
    )


def tropical_polynomial_spec() -> FunctionSpec:
    """``f(x) = min(2x1 + 1, x1 + x2, 2x2 + 1)`` — a min of three affine pieces (a tropical polynomial)."""
    pieces = [
        QuiltAffine.affine((2, 0), 1, name="2x1+1"),
        QuiltAffine.affine((1, 1), 0, name="x1+x2"),
        QuiltAffine.affine((0, 2), 1, name="2x2+1"),
    ]

    def evaluate(v: Sequence[int]) -> int:
        x1, x2 = int(v[0]), int(v[1])
        return min(2 * x1 + 1, x1 + x2, 2 * x2 + 1)

    return FunctionSpec(
        name="tropical(min(2x1+1,x1+x2,2x2+1))",
        dimension=2,
        func=evaluate,
        eventually_min=EventuallyMin(pieces, (0, 0), name="tropical"),
        expected_obliviously_computable=True,
    )


def min3_with_offset_spec() -> FunctionSpec:
    """``f(x) = min(x1, x2, x3) + ⌊(x1 + x2 + x3)/3⌋`` restricted... kept simple:
    ``min(x1 + 1, x2 + 1, x3 + 1, ⌈(x1 + x2 + x3)/3⌉ + 1)`` a 3D min with a fractional-gradient piece."""
    ceil_third = QuiltAffine(
        (Fraction(1, 3), Fraction(1, 3), Fraction(1, 3)),
        3,
        {
            residue: Fraction((-(sum(residue)) % 3), 3) + 1
            for residue in itertools.product(range(3), repeat=3)
        },
        name="ceil(sum/3)+1",
        validate=False,
    )
    pieces = [
        QuiltAffine.affine((1, 0, 0), 1),
        QuiltAffine.affine((0, 1, 0), 1),
        QuiltAffine.affine((0, 0, 1), 1),
        ceil_third,
    ]

    def evaluate(v: Sequence[int]) -> int:
        x1, x2, x3 = (int(value) for value in v)
        return min(x1 + 1, x2 + 1, x3 + 1, math.ceil((x1 + x2 + x3) / 3) + 1)

    return FunctionSpec(
        name="min3-with-average-cap",
        dimension=3,
        func=evaluate,
        eventually_min=EventuallyMin(pieces, (0, 0, 0), name="min3-with-average-cap"),
        expected_obliviously_computable=True,
    )


def all_extended_specs() -> List[FunctionSpec]:
    """Every extended-catalog spec."""
    return [
        minimum_3d_spec(),
        weighted_floor_spec(),
        capped_sum_spec(),
        tropical_polynomial_spec(),
        min3_with_offset_spec(),
    ]
