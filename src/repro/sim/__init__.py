"""Simulators for discrete CRNs: scalar reference schedulers + a numpy batch engine.

Two scheduling semantics are provided, each in a scalar and a vectorized form:

* **Gillespie** — the exact stochastic simulation algorithm (Gillespie 1977),
  sampling the continuous-time Markov process the paper describes.  Used for
  kinetic experiments and throughput benchmarks.
* **Fair** — a rate-agnostic scheduler that repeatedly fires a uniformly
  random applicable reaction.  Stable computation is defined purely by
  reachability, so a fair random scheduler converges to the stable output with
  probability 1; this is the workhorse of the empirical verification harness
  for inputs too large for exhaustive search.

The scalar simulators are the reference oracle; the batch engines
(:mod:`repro.sim.engine`) advance ``B`` trajectories per numpy step and are
selected via ``engine="vectorized"`` in the runner helpers.  See ``DESIGN.md``
for the architecture and seeding policy.

API
---

======================================  =======================================================
Symbol                                  Purpose
======================================  =======================================================
``GillespieSimulator`` / ``..Result``   Scalar exact SSA over one trajectory.
``FairScheduler`` / ``FairRunResult``   Scalar rate-independent scheduler (optional bias).
``output_producing_bias``               Adversarial bias: prefer output-producing reactions.
``output_consuming_bias``               Adversarial bias: prefer output-consuming reactions.
``CompiledCRN``                         Dense stoichiometry compilation of a CRN (numpy).
``BatchGillespieEngine``                Vectorized SSA: B independent trajectories per step.
``BatchFairEngine``                     Vectorized fair scheduler with quiescence windows.
``BatchRunResult``                      Array-valued result of a batch run.
``Trajectory`` / ``TrajectoryPoint``    Recorded species counts along a scalar run.
``ConvergenceReport``                   Aggregate statistics over repeated runs.
``run_to_convergence``                  One fair run until silence / quiescence.
``run_many``                            Repeated fair runs (``engine="python"|"vectorized"``).
``estimate_expected_output``            Monte-Carlo mean output under Gillespie kinetics.
``sweep_inputs``                        ``run_many`` over a collection of inputs.
``default_quiescence_window``           Population-scaled convergence-detection window.
``ENGINES``                             The valid ``engine=`` selector values.
======================================  =======================================================
"""

from repro.sim.gillespie import GillespieSimulator, GillespieResult
from repro.sim.fair import (
    FairScheduler,
    FairRunResult,
    output_consuming_bias,
    output_producing_bias,
)
from repro.sim.engine import (
    BatchFairEngine,
    BatchGillespieEngine,
    BatchRunResult,
    CompiledCRN,
)
from repro.sim.trajectory import Trajectory, TrajectoryPoint
from repro.sim.runner import (
    ENGINES,
    ConvergenceReport,
    default_quiescence_window,
    run_to_convergence,
    run_many,
    estimate_expected_output,
    sweep_inputs,
)

__all__ = [
    "GillespieSimulator",
    "GillespieResult",
    "FairScheduler",
    "FairRunResult",
    "output_producing_bias",
    "output_consuming_bias",
    "CompiledCRN",
    "BatchGillespieEngine",
    "BatchFairEngine",
    "BatchRunResult",
    "Trajectory",
    "TrajectoryPoint",
    "ConvergenceReport",
    "run_to_convergence",
    "run_many",
    "estimate_expected_output",
    "sweep_inputs",
    "default_quiescence_window",
    "ENGINES",
]
