"""Run configuration for every repeated-run entry point.

:class:`RunConfig` consolidates the kwarg cloud that used to be duplicated
across ``run_many`` / ``estimate_expected_output`` / ``verify_stable_computation``
(``trials`` / ``max_steps`` / ``quiescence_window`` / ``seed`` / ``engine``)
into one frozen, validated value object.  The legacy keyword signatures remain
supported everywhere — they are forwarded into a ``RunConfig`` internally — so
a config is never *required*, it is simply the canonical form.

Seeding is part of the config's job: :meth:`RunConfig.trial_seeds` spawns the
per-trial seed sequence (matching the historical ``random.Random(seed)``
stream bit for bit), and :meth:`RunConfig.per_input` derives independent
per-input configs for sweeps so that two inputs in one sweep never replay the
same random stream.  The ``"python"`` engine feeds each per-trial seed into a
``random.Random`` consumed by the scalar kernel (:mod:`repro.sim.kernel`),
which preserves the legacy per-step draw order — so seeded results are stable
across the dict-loop → kernel migration.

This module deliberately imports nothing from the rest of the package, so the
low-level simulation layer can depend on it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple


def validate_epsilon(value) -> float:
    """Validate a tau-leaping error tolerance: a number strictly in (0, 1).

    The single source of truth for the ``epsilon`` contract, shared by
    :class:`RunConfig` and :class:`repro.sim.kernel.TauLeapPolicy` so the two
    can never drift.  Returns the value as a float.
    """
    if (
        not isinstance(value, (int, float))
        or isinstance(value, bool)
        or not 0.0 < value < 1.0
    ):
        raise ValueError(
            f"epsilon must be a number in the open interval (0, 1), got {value!r}"
        )
    return float(value)


@dataclass(frozen=True)
class RunConfig:
    """Immutable configuration for repeated simulation runs.

    Attributes
    ----------
    trials:
        Number of independent runs to aggregate (must be ``>= 1``).
    max_steps:
        Per-run reaction-event budget (must be ``>= 1``).
    quiescence_window:
        Convergence-detection window for the fair scheduler; ``None`` selects
        the population-scaled default
        (:func:`repro.sim.runner.default_quiescence_window`).
    seed:
        Master seed.  ``None`` draws fresh entropy per run; an integer makes
        every derived stream reproducible.
    engine:
        Name of a registered simulation engine (see
        :mod:`repro.sim.registry`).  Validated at dispatch time against the
        live registry, not here, so configs stay registry-agnostic.
    epsilon:
        Error-control knob for approximate engines (``engine="tau"``): the
        relative propensity drift tolerated within one tau-leap (see
        :class:`repro.sim.kernel.TauLeapPolicy`).  Must lie strictly between
        0 and 1; smaller is more accurate and slower.  Exact engines ignore
        it, but it is part of :meth:`cache_key` for every config, so cached
        campaign cells are keyed by it.
    allow_approximate:
        Opt-in for ``engine="auto"`` resolution to pick an *approximate*
        engine (``"tau-vec"`` / ``"tau"``) when the population clears the
        engine's recommended floor.  Off by default: auto resolution stays
        exact unless the caller explicitly accepts statistically-gated
        (rather than exact) sampling.  Explicit engine selections are never
        affected by this flag.
    """

    trials: int = 10
    max_steps: int = 1_000_000
    quiescence_window: Optional[int] = None
    seed: Optional[int] = None
    engine: str = "python"
    epsilon: float = 0.03
    allow_approximate: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.trials, int) or self.trials < 1:
            raise ValueError(f"trials must be an integer >= 1, got {self.trials!r}")
        if not isinstance(self.max_steps, int) or self.max_steps < 1:
            raise ValueError(f"max_steps must be an integer >= 1, got {self.max_steps!r}")
        if self.quiescence_window is not None and (
            not isinstance(self.quiescence_window, int) or self.quiescence_window < 1
        ):
            raise ValueError(
                f"quiescence_window must be None or an integer >= 1, "
                f"got {self.quiescence_window!r}"
            )
        if not isinstance(self.engine, str) or not self.engine:
            raise ValueError(f"engine must be a nonempty string, got {self.engine!r}")
        validate_epsilon(self.epsilon)
        if not isinstance(self.allow_approximate, bool):
            raise ValueError(
                f"allow_approximate must be a bool, got {self.allow_approximate!r}"
            )

    # -- derivation -----------------------------------------------------------

    def replace(self, **changes) -> "RunConfig":
        """A copy of this config with the given fields changed (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def trial_seeds(self, count: Optional[int] = None) -> Tuple[int, ...]:
        """The per-trial seed sequence spawned from the master seed.

        Matches the historical scalar-runner stream bit for bit: a master
        ``random.Random(seed)`` emits one 64-bit seed per trial.  With
        ``seed=None`` the master generator is entropy-seeded, so the trials
        are still independent, just not reproducible.
        """
        if count is None:
            count = self.trials
        master = random.Random(self.seed)
        return tuple(master.getrandbits(64) for _ in range(count))

    def per_input(self, count: int) -> Tuple["RunConfig", ...]:
        """Independent per-input configs for a sweep over ``count`` inputs.

        With a concrete master seed, each input gets its own 64-bit derived
        seed (so no two inputs replay the same stream, and the whole sweep is
        reproducible from the master).  With ``seed=None`` the config is
        reused as-is: every run already draws fresh entropy.
        """
        if count < 0:
            raise ValueError(f"count must be nonnegative, got {count}")
        if self.seed is None:
            return tuple(self for _ in range(count))
        master = random.Random(self.seed)
        return tuple(self.replace(seed=master.getrandbits(64)) for _ in range(count))

    # -- serialization / hashing ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """All fields as a JSON-serializable dict (round-trips via :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    def to_json_dict(self) -> Dict[str, Any]:
        """The wire form: all fields, JSON-serializable, stable key set.

        Identical to :meth:`to_dict` today; the separate name documents the
        contract the serve protocol and the lab store rely on — this is the
        payload :meth:`from_json_dict` round-trips exactly.
        """
        return self.to_dict()

    @classmethod
    def from_json_dict(
        cls, data: Mapping[str, Any], default: Optional["RunConfig"] = None
    ) -> "RunConfig":
        """Rebuild a config from untrusted JSON, naming the bad field on error.

        The strict counterpart of :meth:`from_dict` for wire payloads (the
        serve protocol, campaign manifests fed back by clients): unknown keys
        are **rejected** (a typo'd ``"trails"`` must not silently become the
        default), and ``seed`` — the one field ``__post_init__`` cannot
        validate because any hashable seeds a ``random.Random`` — is checked
        here.  Every :exc:`ValueError` names the offending field.

        ``default`` (when given) supplies the base values that the payload's
        fields override — the serve endpoints merge request configs over the
        server's default this way.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"config must be a JSON object, got {type(data).__name__}"
            )
        known = [field.name for field in dataclasses.fields(cls)]
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"config has unknown field(s) "
                f"{', '.join(repr(name) for name in unknown)}; "
                f"known fields: {', '.join(repr(name) for name in known)}"
            )
        seed = data.get("seed")
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
            raise ValueError(
                f"config field 'seed' must be null or an integer, got {seed!r}"
            )
        try:
            if default is not None:
                return default.replace(**dict(data))
            return cls(**dict(data))
        except ValueError as exc:
            # __post_init__ messages already lead with the field name
            # ("trials must be ..."); add the config prefix for context.
            raise ValueError(f"config field invalid: {exc}") from None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are ignored, so rows written by a newer version of the
        package (with extra config fields) still load; missing keys fall back
        to the field defaults.  Validation runs as usual.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def cache_key(self) -> str:
        """A stable, order-independent content hash of all fields.

        Two configs hash equal iff their field values are equal — the hash is
        computed from the sorted-key JSON rendering, so field declaration
        order, dict insertion order, and process hash randomization cannot
        perturb it.  Used by :mod:`repro.lab.cache` to content-address
        simulation results; stable across processes and sessions.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """A compact single-line rendering (used by reports and examples)."""
        window = "auto" if self.quiescence_window is None else str(self.quiescence_window)
        return (
            f"RunConfig(engine={self.engine}, trials={self.trials}, "
            f"max_steps={self.max_steps}, quiescence_window={window}, "
            f"seed={self.seed}, epsilon={self.epsilon}, "
            f"allow_approximate={self.allow_approximate})"
        )
