"""Continuous (rate-independent) CRN model used for the Section 8 comparison.

Chalk, Kornerup, Reeves and Soloveichik characterized the real-valued functions
``R^d_{>=0} -> R_{>=0}`` stably computable by output-oblivious *continuous*
CRNs as the superadditive, positive-continuous, piecewise rational-linear
functions.  Theorem 8.2 of the paper shows the ∞-scalings of the discrete
obliviously-computable functions are exactly this class.

This package provides a small continuous-CRN substrate sufficient to exhibit
that correspondence: piecewise rational-linear functions (with superadditivity
and positive-continuity checks), a continuous CRN whose stable output is
computed by maximizing reaction extents under species-nonnegativity (an LP,
which is exact for the feed-forward output-oblivious constructions used here),
and the min-of-linear construction mirroring Fig. 1.
"""

from repro.continuous.functions import (
    LinearFunction,
    MinOfLinear,
    PiecewiseRationalLinear,
)
from repro.continuous.crn import ContinuousCRN, ContinuousReaction
from repro.continuous.construction import build_min_of_linear_continuous_crn

__all__ = [
    "LinearFunction",
    "MinOfLinear",
    "PiecewiseRationalLinear",
    "ContinuousCRN",
    "ContinuousReaction",
    "build_min_of_linear_continuous_crn",
]
