"""Scalar-vs-vectorized equivalence suite for the batch simulation engine.

The scalar simulators are the reference oracle: for every catalog CRN the
batch engines must reach the identical stable output, and their step counts
must statistically match the scalar ones.  Also covers the dense compilation
(`CompiledCRN`), seeding policy, and the engine selectors on the runners.
"""

import math
import random

import numpy as np
import pytest

from repro.crn.configuration import Configuration
from repro.crn.network import CRN
from repro.crn.species import Species, species
from repro.functions.catalog import (
    add_spec,
    constant_spec,
    double_spec,
    floor_3x_over_2_spec,
    identity_spec,
    maximum_spec,
    min_one_spec,
    minimum_spec,
)
from repro.sim import (
    BatchFairEngine,
    BatchGillespieEngine,
    BatchTauLeapEngine,
    CompiledCRN,
    FairScheduler,
    GillespieSimulator,
    estimate_expected_output,
    run_many,
)
from repro.sim.fair import output_producing_bias
from repro.verify import verify_stable_computation


SPEC_FACTORIES = [
    double_spec,
    identity_spec,
    lambda: constant_spec(2),
    add_spec,
    minimum_spec,
    maximum_spec,
    min_one_spec,
    floor_3x_over_2_spec,
]
SPEC_IDS = ["double", "identity", "const2", "add", "min", "max", "min1", "floor3x2"]


def small_inputs(dimension):
    if dimension == 1:
        return [(0,), (1,), (3,), (6,)]
    return [(0, 0), (1, 0), (2, 3), (5, 5), (6, 2)]


# ---------------------------------------------------------------------------
# CompiledCRN: dense compilation, encoding, vectorized kinetics
# ---------------------------------------------------------------------------


class TestCompiledCRN:
    def test_stoichiometry_matrices(self):
        crn = floor_3x_over_2_spec().known_crn  # X -> 3Z, 2Z -> Y
        compiled = CompiledCRN(crn)
        x, y, z = (compiled.index[Species(n)] for n in "XYZ")
        assert compiled.reactants[0, x] == 1 and compiled.products[0, z] == 3
        assert compiled.reactants[1, z] == 2 and compiled.products[1, y] == 1
        assert (compiled.net == compiled.products - compiled.reactants).all()
        assert compiled.output_index == y
        assert compiled.n_reactions == 2 and compiled.n_species == 3

    def test_species_order_matches_crn(self):
        crn = maximum_spec().known_crn
        compiled = CompiledCRN(crn)
        assert compiled.species == crn.species()

    def test_encode_decode_roundtrip(self):
        crn = maximum_spec().known_crn
        compiled = crn.compiled()
        config = crn.initial_configuration((4, 9))
        assert compiled.decode(compiled.encode(config)) == config

    def test_encode_rejects_foreign_species(self):
        compiled = minimum_spec().known_crn.compiled()
        with pytest.raises(ValueError):
            compiled.encode(Configuration({Species("Nope"): 1}))

    def test_encode_batch_tiles_rows(self):
        crn = minimum_spec().known_crn
        compiled = crn.compiled()
        batch = compiled.encode_batch(crn.initial_configuration((2, 3)), 5)
        assert batch.shape == (5, compiled.n_species)
        assert (batch == batch[0]).all()

    def test_encode_batch_rejects_empty_batch(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError):
            crn.compiled().encode_batch(crn.initial_configuration((1, 1)), 0)

    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_propensities_match_scalar(self, factory):
        crn = factory().known_crn
        compiled = crn.compiled()
        rng = random.Random(13)
        for _ in range(10):
            config = Configuration(
                {sp: rng.randrange(0, 6) for sp in compiled.species}
            )
            matrix = compiled.propensities(compiled.encode(config)[None, :])
            scalar = [rxn.propensity(config) for rxn in crn.reactions]
            assert matrix[0] == pytest.approx(scalar)

    def test_propensities_higher_order_binomials(self):
        a, b = species("A B")
        crn = CRN([3 * a >> b], (a,), b, name="cubic")
        compiled = crn.compiled()
        for n in range(7):
            value = compiled.propensities(np.array([[n, 0]]))[0, 0]
            assert value == pytest.approx(math.comb(n, 3))

    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_applicability_matches_scalar(self, factory):
        crn = factory().known_crn
        compiled = crn.compiled()
        rng = random.Random(17)
        for _ in range(10):
            config = Configuration(
                {sp: rng.randrange(0, 3) for sp in compiled.species}
            )
            mask = compiled.applicable(compiled.encode(config)[None, :])[0]
            assert mask.tolist() == [rxn.applicable(config) for rxn in crn.reactions]

    def test_crn_compiled_is_cached(self):
        crn = minimum_spec().known_crn
        assert crn.compiled() is crn.compiled()


# ---------------------------------------------------------------------------
# Stable-output equivalence against the scalar oracle
# ---------------------------------------------------------------------------


class TestGillespieEquivalence:
    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_identical_stable_outputs(self, factory):
        spec = factory()
        crn = spec.known_crn
        engine = BatchGillespieEngine(crn.compiled(), seed=5)
        for x in small_inputs(spec.dimension):
            expected = spec.func(x)
            scalar = GillespieSimulator(crn, rng=random.Random(5)).run_on_input(x)
            assert scalar.silent
            assert scalar.output_count(crn) == expected
            result = engine.run_on_input(x, batch=8)
            assert result.silent.all()
            assert (result.output_counts() == expected).all()

    def test_step_counts_match_deterministic_crns(self):
        # For these CRNs every fair/Gillespie run fires the same number of
        # reactions regardless of schedule, so the batch engine must agree
        # exactly with the scalar oracle.
        cases = [
            (double_spec(), (7,), 7),
            (minimum_spec(), (4, 9), 4),
            (add_spec(), (3, 5), 8),
        ]
        for spec, x, expected_steps in cases:
            crn = spec.known_crn
            scalar = GillespieSimulator(crn, rng=random.Random(2)).run_on_input(x)
            result = BatchGillespieEngine(crn.compiled(), seed=2).run_on_input(x, batch=6)
            assert scalar.steps == expected_steps
            assert (result.steps == expected_steps).all()

    def test_step_counts_statistically_match_max(self):
        # The max CRN's step count is schedule-dependent; the batch engine
        # samples the same CTMC, so the means must agree within sampling noise.
        crn = maximum_spec().known_crn
        trials = 60
        rng = random.Random(21)
        scalar_steps = [
            GillespieSimulator(crn, rng=random.Random(rng.getrandbits(64)))
            .run_on_input((6, 6))
            .steps
            for _ in range(trials)
        ]
        batch = BatchGillespieEngine(crn.compiled(), seed=21).run_on_input(
            (6, 6), batch=trials
        )
        scalar_mean = sum(scalar_steps) / trials
        batch_mean = float(batch.steps.mean())
        assert batch_mean == pytest.approx(scalar_mean, rel=0.25)

    def test_max_steps_bound(self):
        crn = double_spec().known_crn
        result = BatchGillespieEngine(crn.compiled(), seed=1).run_on_input(
            (100,), batch=4, max_steps=10
        )
        assert (result.steps == 10).all()
        assert not result.silent.any()

    def test_max_time_clamps_clock(self):
        crn = double_spec().known_crn
        result = BatchGillespieEngine(crn.compiled(), seed=1).run_on_input(
            (1000,), batch=4, max_time=1e-6
        )
        assert (result.times <= 1e-6).all()
        assert not result.silent.any()

    def test_final_times_positive_on_silent_runs(self):
        crn = minimum_spec().known_crn
        result = BatchGillespieEngine(crn.compiled(), seed=9).run_on_input((5, 5), batch=3)
        assert result.silent.all()
        assert (result.times > 0).all()


class TestFairEquivalence:
    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_identical_stable_outputs(self, factory):
        spec = factory()
        crn = spec.known_crn
        engine = BatchFairEngine(crn.compiled(), seed=7)
        for x in small_inputs(spec.dimension):
            expected = spec.func(x)
            scalar = FairScheduler(crn, rng=random.Random(7)).run_on_input(x)
            assert scalar.silent
            assert crn.output_count(scalar.final_configuration) == expected
            result = engine.run_on_input(x, batch=8)
            assert result.silent.all()
            assert (result.output_counts() == expected).all()

    def test_zero_reaction_crn_is_silent_everywhere(self):
        # The scalar simulators report silent=True for an empty network; the
        # batch engines must agree instead of tripping on a (B, 0) matrix.
        x, y = species("X Y")
        crn = CRN([], (x,), y)
        for engine_cls in (BatchGillespieEngine, BatchFairEngine):
            result = engine_cls(crn.compiled(), seed=1).run_on_input((3,), batch=4)
            assert result.silent.all()
            assert (result.steps == 0).all()
            assert (result.output_counts() == 0).all()

    def test_quiescence_window_terminates_catalytic_network(self):
        x1, x2, y = species("X1 X2 Y")
        crn = CRN([x1 + x2 >> x1 + x2], (x1, x2), y)
        result = BatchFairEngine(crn.compiled(), seed=8).run_on_input(
            (2, 2), batch=4, quiescence_window=50, max_steps=10_000
        )
        assert result.converged.all()
        assert not result.silent.any()
        assert result.all_silent_or_converged()

    def test_producing_bias_overshoots_max(self):
        crn = maximum_spec().known_crn
        engine = BatchFairEngine(
            crn.compiled(), seed=6, bias=output_producing_bias(crn)
        )
        result = engine.run_on_input((4, 4), batch=8, quiescence_window=500)
        # The adversarial schedule pushes the output above max(4,4)=4
        # transiently in at least some rows (the scalar test asserts the same).
        assert result.max_output_seen.max() > 4
        assert (result.output_counts() == 4).all()

    def test_max_output_seen_tracks_peak(self):
        crn = minimum_spec().known_crn
        result = BatchFairEngine(crn.compiled(), seed=4).run_on_input((3, 9), batch=4)
        assert (result.max_output_seen == 3).all()

    def test_configurations_decode_to_oracle_configuration(self):
        crn = minimum_spec().known_crn
        result = BatchFairEngine(crn.compiled(), seed=3).run_on_input((2, 5), batch=3)
        scalar = FairScheduler(crn, rng=random.Random(3)).run_on_input((2, 5))
        for config in result.configurations():
            assert config == scalar.final_configuration


# ---------------------------------------------------------------------------
# Seeding / reproducibility policy
# ---------------------------------------------------------------------------


class TestSeeding:
    def test_same_seed_same_batch(self):
        crn = maximum_spec().known_crn
        first = BatchGillespieEngine(crn.compiled(), seed=42).run_on_input((5, 7), batch=10)
        second = BatchGillespieEngine(crn.compiled(), seed=42).run_on_input((5, 7), batch=10)
        assert (first.counts == second.counts).all()
        assert (first.steps == second.steps).all()
        assert first.times == pytest.approx(second.times)

    def test_different_seeds_differ(self):
        crn = maximum_spec().known_crn
        first = BatchGillespieEngine(crn.compiled(), seed=1).run_on_input((8, 8), batch=10)
        second = BatchGillespieEngine(crn.compiled(), seed=2).run_on_input((8, 8), batch=10)
        assert (first.steps != second.steps).any() or first.times != pytest.approx(second.times)

    def test_explicit_generator_accepted(self):
        crn = minimum_spec().known_crn
        engine = BatchFairEngine(crn.compiled(), rng=np.random.default_rng(3))
        assert (engine.run_on_input((2, 2), batch=2).output_counts() == 2).all()

    def test_seed_and_rng_are_exclusive(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError):
            BatchGillespieEngine(crn.compiled(), seed=1, rng=np.random.default_rng(1))

    def test_python_engine_seeded_behaviour_unchanged(self):
        # The default engine must reproduce the historical seeded stream so
        # existing experiments stay bit-for-bit reproducible.
        crn = maximum_spec().known_crn
        first = run_many(crn, (4, 6), trials=5, seed=10)
        second = run_many(crn, (4, 6), trials=5, seed=10, engine="python")
        assert first.outputs == second.outputs
        assert first.steps == second.steps


# ---------------------------------------------------------------------------
# Runner / verifier rewiring
# ---------------------------------------------------------------------------


class TestEngineSelector:
    def test_run_many_vectorized_report(self):
        crn = minimum_spec().known_crn
        report = run_many(crn, (2, 5), trials=6, seed=10, engine="vectorized")
        assert report.input_value == (2, 5)
        assert report.output_unanimous
        assert report.output_mode == 2
        assert report.all_silent_or_converged
        assert report.max_overshoot == 0
        assert len(report.outputs) == len(report.steps) == 6

    def test_run_many_vectorized_is_reproducible(self):
        crn = maximum_spec().known_crn
        first = run_many(crn, (3, 8), trials=6, seed=10, engine="vectorized")
        second = run_many(crn, (3, 8), trials=6, seed=10, engine="vectorized")
        assert first.outputs == second.outputs
        assert first.steps == second.steps

    def test_run_many_rejects_unknown_engine(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError):
            run_many(crn, (1, 1), engine="cuda")

    def test_estimate_expected_output_vectorized(self):
        crn = double_spec().known_crn
        estimate = estimate_expected_output(
            crn, (6,), trials=5, seed=11, engine="vectorized"
        )
        assert estimate == pytest.approx(12.0)

    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_verify_stable_computation_vectorized(self, factory):
        spec = factory()
        report = verify_stable_computation(
            spec.known_crn,
            spec.func,
            inputs=small_inputs(spec.dimension),
            method="simulation",
            trials=4,
            engine="vectorized",
            function_name=spec.name,
        )
        assert report.passed, report.describe()

    def test_verify_rejects_unknown_engine_even_on_exhaustive_path(self):
        spec = minimum_spec()
        with pytest.raises(ValueError):
            verify_stable_computation(
                spec.known_crn, spec.func, inputs=[(1, 1)], method="exhaustive", engine="cuda"
            )

    def test_verify_vectorized_catches_wrong_function(self):
        spec = minimum_spec()
        report = verify_stable_computation(
            spec.known_crn,
            lambda x: max(x),  # wrong on asymmetric inputs
            inputs=[(2, 5)],
            method="simulation",
            trials=4,
            engine="vectorized",
        )
        assert not report.passed


# ---------------------------------------------------------------------------
# BatchTauLeapEngine: vectorized tau-leaping (engine="tau-vec")
# ---------------------------------------------------------------------------


class TestBatchTauLeapEngine:
    """The batched tau-leap engine against the scalar oracle and its own rails.

    Distributional admission lives in ``tests/test_statistical_equivalence.py``
    (KS gates, ``-m statistical``); this class covers the deterministic
    contract — stable outputs, safety rails, bounds, stats, and knobs.
    """

    @pytest.mark.parametrize("factory", SPEC_FACTORIES, ids=SPEC_IDS)
    def test_identical_stable_outputs_small_inputs(self, factory):
        # Small populations sit entirely under the n_critical rule, so this
        # exercises the exact-fallback path: the engine must degrade to the
        # exact batch engine and still reach every stable output.
        spec = factory()
        crn = spec.known_crn
        engine = BatchTauLeapEngine(crn.compiled(), seed=5)
        for x in small_inputs(spec.dimension):
            expected = spec.func(x)
            result = engine.run_on_input(x, batch=8)
            assert result.silent.all()
            assert (result.output_counts() == expected).all()

    def test_large_population_collapses_leap_rounds(self):
        # The point of leaping: 5000 firings per trial in a few hundred leap
        # rounds shared by the whole batch, not 5000 scheduler iterations.
        crn = minimum_spec().known_crn
        result = BatchTauLeapEngine(crn.compiled(), seed=7).run_on_input(
            (5_000, 5_000), batch=16
        )
        assert result.silent.all()
        assert (result.output_counts() == 5_000).all()
        assert (result.steps == 5_000).all()
        assert result.stats is not None
        assert result.stats.selections < 1_000  # leap rounds, not events

    def test_counts_never_negative_and_clock_advances(self):
        crn = minimum_spec().known_crn
        result = BatchTauLeapEngine(crn.compiled(), seed=3).run_on_input(
            (2_000, 1_500), batch=8
        )
        assert (result.counts >= 0).all()
        assert (result.times > 0).all()

    def test_max_steps_bound_overshoots_by_at_most_one_leap(self):
        crn = double_spec().known_crn
        result = BatchTauLeapEngine(crn.compiled(), seed=1).run_on_input(
            (100_000,), batch=4, max_steps=10_000
        )
        assert (result.steps >= 10_000).all()
        assert not result.silent.any()

    def test_max_time_clamps_clock(self):
        crn = double_spec().known_crn
        result = BatchTauLeapEngine(crn.compiled(), seed=1).run_on_input(
            (100_000,), batch=4, max_time=1e-7
        )
        assert (result.times <= 1e-7).all()
        assert not result.silent.any()

    def test_quiescence_window_terminates_catalytic_network(self):
        # X1 + X2 -> X1 + X2 never falls silent and never moves the output;
        # the leap-granularity quiescence window must stop it, mirroring the
        # scalar SimulatorCore semantics.  Purely catalytic kinetics also
        # exercise the infinite-tau cap (tau bounded to 1000 expected
        # firings), so the window is crossed in a handful of leap rounds.
        x1, x2, y = species("X1 X2 Y")
        crn = CRN([x1 + x2 >> x1 + x2], (x1, x2), y)
        result = BatchTauLeapEngine(crn.compiled(), seed=4).run_on_input(
            (50, 50), batch=6, quiescence_window=500, max_steps=100_000
        )
        assert result.converged.all()
        assert not result.silent.any()

    def test_zero_reaction_crn_is_silent_everywhere(self):
        X, Y = species("X Y")
        crn = CRN([], (X,), Y)
        result = BatchTauLeapEngine(crn.compiled(), seed=2).run_on_input((9,), batch=5)
        assert result.silent.all()
        assert (result.steps == 0).all()

    def test_run_stats_are_uniform_and_consistent(self):
        crn = minimum_spec().known_crn
        result = BatchTauLeapEngine(crn.compiled(), seed=11).run_on_input(
            (50_000, 50_000), batch=8
        )
        stats = result.stats
        assert stats.events == int(result.steps.sum())
        assert 0 < stats.selections < stats.events
        assert stats.propensity_ops > 0
        assert stats.rng_draws > 0
        assert stats.wall_s > 0.0

    def test_same_seed_same_batch(self):
        crn = maximum_spec().known_crn
        first = BatchTauLeapEngine(crn.compiled(), seed=42).run_on_input(
            (5_000, 7_000), batch=6
        )
        second = BatchTauLeapEngine(crn.compiled(), seed=42).run_on_input(
            (5_000, 7_000), batch=6
        )
        assert (first.counts == second.counts).all()
        assert (first.steps == second.steps).all()
        assert first.times == pytest.approx(second.times)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, "x", True])
    def test_epsilon_validated(self, epsilon):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError):
            BatchTauLeapEngine(crn.compiled(), seed=1, epsilon=epsilon)

    def test_safety_knobs_validated(self):
        crn = minimum_spec().known_crn
        with pytest.raises(ValueError):
            BatchTauLeapEngine(crn.compiled(), seed=1, n_critical=0.0)
        with pytest.raises(ValueError):
            BatchTauLeapEngine(crn.compiled(), seed=1, exact_burst=0)
        with pytest.raises(ValueError):
            BatchTauLeapEngine(crn.compiled(), seed=1, max_rejections=0)

    def test_run_many_tau_vec_report(self):
        crn = minimum_spec().known_crn
        report = run_many(crn, (3_000, 4_000), trials=6, seed=10, engine="tau-vec")
        assert report.output_unanimous
        assert report.output_mode == 3_000
        assert report.all_silent_or_converged
        assert len(report.outputs) == len(report.steps) == 6

    def test_run_many_tau_vec_is_reproducible(self):
        crn = maximum_spec().known_crn
        first = run_many(crn, (3_000, 8_000), trials=6, seed=10, engine="tau-vec")
        second = run_many(crn, (3_000, 8_000), trials=6, seed=10, engine="tau-vec")
        assert first.outputs == second.outputs
        assert first.steps == second.steps

    def test_estimate_expected_output_tau_vec(self):
        crn = double_spec().known_crn
        estimate = estimate_expected_output(
            crn, (6_000,), trials=4, seed=11, engine="tau-vec"
        )
        assert estimate == pytest.approx(12_000.0)

    def test_tau_vec_rejects_fair_requests(self):
        from repro.sim.registry import validate_engine_request

        with pytest.raises(ValueError, match="supports_fair=False"):
            validate_engine_request("tau-vec", fair=True)
        # epsilon= is exactly what the approximate engine is for.
        info = validate_engine_request("tau-vec", epsilon=0.05)
        assert info.approximate and info.batch_capable
