"""Tests for the Lemma 6.1 construction (output-oblivious CRN for quilt-affine g)."""

import pytest

from repro.core.construction_quilt import build_quilt_affine_crn
from repro.crn.reachability import stably_computes_exhaustive
from repro.quilt.quilt_affine import QuiltAffine
from repro.verify.stable import verify_stable_computation


class TestStructure:
    def test_output_oblivious_and_leader_driven(self):
        crn = build_quilt_affine_crn(QuiltAffine.floor_linear((3,), 2))
        assert crn.is_output_oblivious()
        assert crn.leader is not None

    def test_size_matches_theory(self):
        # 1 initial reaction + d * p^d stepping reactions.
        quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        crn = build_quilt_affine_crn(quilt)
        assert len(crn.reactions) == 1 + 2 * 9

    def test_negative_function_rejected(self):
        negative = QuiltAffine((1,), 1, {(0,): -5}, validate=False)
        with pytest.raises(ValueError):
            build_quilt_affine_crn(negative)

    def test_custom_input_names(self):
        crn = build_quilt_affine_crn(
            QuiltAffine.affine((1, 1), 0), input_names=["A", "B"], prefix="m_"
        )
        assert [sp.name for sp in crn.input_species] == ["A", "B"]
        assert crn.output_species.name == "m_Y"


class TestCorrectness:
    def test_floor_3x_over_2_exhaustive(self):
        crn = build_quilt_affine_crn(QuiltAffine.floor_linear((3,), 2))
        verdicts = stably_computes_exhaustive(
            crn, lambda x: (3 * x[0]) // 2, [(x,) for x in range(6)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_affine_with_constant(self):
        quilt = QuiltAffine.affine((2, 1), 3)
        crn = build_quilt_affine_crn(quilt)
        verdicts = stably_computes_exhaustive(
            crn, lambda x: 2 * x[0] + x[1] + 3, [(0, 0), (1, 2), (2, 1)]
        )
        assert all(v.holds and v.conclusive for v in verdicts)

    def test_fig3b_2d_quilt(self):
        quilt = QuiltAffine((1, 2), 3, {(1, 2): -1, (2, 2): -1, (2, 1): -1})
        crn = build_quilt_affine_crn(quilt)
        report = verify_stable_computation(
            crn, quilt, inputs=[(0, 0), (1, 2), (2, 2), (3, 1), (4, 4)], exhaustive_limit=5_000
        )
        assert report.passed

    def test_period_one_catalytic_self_loop(self):
        # Period 1 means the single leader state reacts with inputs as a catalyst.
        crn = build_quilt_affine_crn(QuiltAffine.affine((1,), 0))
        verdicts = stably_computes_exhaustive(crn, lambda x: x[0], [(0,), (3,), (5,)])
        assert all(v.holds and v.conclusive for v in verdicts)
