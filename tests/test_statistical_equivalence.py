"""Cross-engine statistical equivalence gates (two-sample KS, fixed seeds).

The exact engines are locked bit-for-bit elsewhere (``tests/test_kernel.py``,
``tests/test_engine.py``).  This suite guards the property those locks cannot
express: every kinetic sampler — the exact scalar kernel (``python``), the
exact numpy batch engine (``vectorized``), the exact Gibson–Bruck
next-reaction engine (``nrm``, exact but on a differently-consumed stream,
so bit-for-bit locks are impossible by construction), the approximate
tau-leaping policy (``tau``), and the batched tau-leaping engine
(``tau-vec``, approximate *and* on the numpy Generator stream) — samples the
*same* continuous-time Markov chain, so their per-trajectory
completion-step and final-output
distributions must agree up to sampling noise.  Each gate is a two-sample Kolmogorov–Smirnov test
(:mod:`repro.verify.statistical`) at ``ALPHA``, run on a fixed seed matrix so
the verdicts are deterministic in CI.

Coverage:

* the five construction strategy families (known / 1d / leaderless / quilt /
  general), python-vs-vectorized-vs-nrm-vs-tau-vs-tau-vec;
* a branching CRN whose output is genuinely stochastic
  (``X -> Y`` at rate 1 vs ``X -> Z`` at rate 3, output ~ Binomial(n, 1/4)),
  so the gates compare non-degenerate distributions;
* *power*: deliberately rate-biased Gillespie, next-reaction, *and* batched
  tau-leap samplers must be **rejected** by the same gates — a subtly biased
  backend (present or future numba/C) cannot pass by being merely plausible.

Methodology knobs (documented in DESIGN.md section 6): ``ALPHA = 1e-3`` per
gate, ``N_SEEDS = 60`` trajectories per engine per case.  Ties make the
asymptotic KS test conservative on integer data, which errs toward stability;
the biased-policy tests demonstrate the power retained.

Run alone with ``-m statistical`` (the dedicated CI job does); the suite also
runs in the normal tier-1 sweep because it is deterministic and fast.  Set
``REPRO_KS_OUT=<path>`` to archive every gate's KS numbers as JSON (CI
uploads this next to the benchmark artifact).
"""

import json
import os
import random

import pytest

from repro.core.characterization import build_crn_for
from repro.crn.network import CRN
from repro.crn.species import species
from repro.functions.catalog import (
    double_spec,
    minimum_spec,
    quilt_2d_fig3b_spec,
    threshold_capped_spec,
)
from repro.sim.kernel import (
    GillespiePolicy,
    NextReactionPolicy,
    TauLeapPolicy,
    _GillespieStepper,
    _NRMStepper,
)
from repro.verify.statistical import (
    DistributionSample,
    assert_distributions_match,
    kolmogorov_pvalue,
    ks_statistic,
    ks_two_sample,
    sample_kinetic_distribution,
)

pytestmark = pytest.mark.statistical

#: Per-gate false-alarm level.  With ~40 deterministic gates per run, 1e-3
#: keeps the fixed-seed matrix stable while the biased-policy tests show the
#: gates retain overwhelming power against real bias.
ALPHA = 1e-3

#: Trajectories per engine per case (the fixed seed matrix is
#: ``BASE_SEED + i`` for the scalar samplers, one ``N_SEEDS``-row batch for
#: the vectorized engine).
N_SEEDS = 60
BASE_SEED = 20_260_730

X, Y, Z = species("X Y Z")


def _branching_crn() -> CRN:
    """Output ~ Binomial(n, 1/4): competing X -> Y (rate 1) / X -> Z (rate 3)."""
    return CRN([(X >> Y), (X >> Z).with_rate(3.0)], (X,), Y, name="branching")


def build_family_cases():
    """(label, CRN, input) for every construction strategy plus the branching CRN.

    Inputs are sized so every family falls silent under Gillespie kinetics
    within the step budget (verified by the gates' ``all_completed`` check)
    and the known/min case is large enough for tau-leaping to actually leap
    rather than just fall back to exact stepping.
    """
    return [
        ("known/min", minimum_spec().known_crn, (400, 700)),
        ("1d/threshold", build_crn_for(threshold_capped_spec(), strategy="1d"), (60,)),
        ("leaderless/double", build_crn_for(double_spec(), strategy="leaderless"), (50,)),
        ("quilt/fig3b", build_crn_for(quilt_2d_fig3b_spec(), strategy="quilt"), (12, 9)),
        ("general/min", build_crn_for(minimum_spec(), strategy="general"), (20, 30)),
        ("branching/binomial", _branching_crn(), (400,)),
    ]


FAMILY_CASES = build_family_cases()
FAMILY_IDS = [label for label, _, _ in FAMILY_CASES]

#: Gate outcomes archived to $REPRO_KS_OUT (CI artifact); see _write_records.
_GATE_RECORDS = []

#: Per-(family, engine) sample cache so each distribution is simulated once
#: even though several gates consume it.
_SAMPLES = {}


@pytest.fixture
def sample_distribution():
    """``sample_distribution(label, crn, x, engine)`` with per-session caching.

    The reusable sampling fixture of the statistical suite: one call per
    (family, engine) pair simulates ``N_SEEDS`` seeded trajectories through
    :func:`repro.verify.statistical.sample_kinetic_distribution`; repeated
    calls replay the cached :class:`DistributionSample`.
    """

    def sampler(label, crn, x, engine) -> DistributionSample:
        key = (label, engine)
        if key not in _SAMPLES:
            _SAMPLES[key] = sample_kinetic_distribution(
                crn, x, engine=engine, n_seeds=N_SEEDS, base_seed=BASE_SEED
            )
        return _SAMPLES[key]

    return sampler


def _gate(label, reference, candidate):
    """Run the KS gates and archive their numbers for the CI artifact."""
    results = assert_distributions_match(
        reference, candidate, metrics=("steps", "outputs"), alpha=ALPHA
    )
    for metric, ks in results:
        _GATE_RECORDS.append(
            {
                "family": label,
                "reference": reference.engine,
                "candidate": candidate.engine,
                "metric": metric,
                "statistic": round(ks.statistic, 6),
                "pvalue": round(ks.pvalue, 6),
                "n": ks.n,
                "m": ks.m,
                "alpha": ALPHA,
            }
        )
    return results


def _write_records():
    out = os.environ.get("REPRO_KS_OUT")
    if not out or not _GATE_RECORDS:
        return
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "schema": "repro-ks-v1",
                "alpha": ALPHA,
                "n_seeds": N_SEEDS,
                "base_seed": BASE_SEED,
                "gates": _GATE_RECORDS,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")


@pytest.fixture(scope="module", autouse=True)
def _archive_gate_records():
    yield
    _write_records()


class TestKSMachinery:
    """The KS toolkit itself, against known answers."""

    def test_identical_samples_never_reject(self):
        sample = [random.Random(1).randint(0, 9) for _ in range(80)]
        result = ks_two_sample(sample, list(sample))
        assert result.statistic == 0.0
        assert result.pvalue == 1.0

    def test_disjoint_samples_maximally_reject(self):
        result = ks_two_sample([0] * 40, [1] * 40)
        assert result.statistic == 1.0
        assert result.pvalue < 1e-6

    def test_statistic_handles_ties_exactly(self):
        # F_a and F_b evaluated after consuming all equal values:
        # a = {0,0,1}, b = {0,1,1} -> sup gap at x=0 is |2/3 - 1/3| = 1/3.
        assert ks_statistic([0, 0, 1], [0, 1, 1]) == pytest.approx(1 / 3)

    def test_statistic_is_symmetric(self):
        rng = random.Random(7)
        a = [rng.randint(0, 30) for _ in range(50)]
        b = [rng.randint(0, 25) for _ in range(70)]
        assert ks_statistic(a, b) == ks_statistic(b, a)

    def test_pvalue_decreases_with_statistic_and_size(self):
        assert kolmogorov_pvalue(0.5, 40, 40) < kolmogorov_pvalue(0.2, 40, 40)
        assert kolmogorov_pvalue(0.3, 200, 200) < kolmogorov_pvalue(0.3, 20, 20)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1, 2])


class TestCrossEngineGates:
    """python vs vectorized vs nrm vs tau across every family, steps + outputs."""

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_vectorized_matches_python(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "python")
        candidate = sample_distribution(label, crn, x, "vectorized")
        assert reference.all_completed and candidate.all_completed
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_matches_python(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "python")
        candidate = sample_distribution(label, crn, x, "tau")
        assert reference.all_completed and candidate.all_completed
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_matches_vectorized(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "vectorized")
        candidate = sample_distribution(label, crn, x, "tau")
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_nrm_matches_python(self, sample_distribution, label, crn, x):
        # The admission gate for the exact-but-stream-divergent NRM engine:
        # same CTMC as the direct method, checked distributionally.
        reference = sample_distribution(label, crn, x, "python")
        candidate = sample_distribution(label, crn, x, "nrm")
        assert reference.all_completed and candidate.all_completed
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_nrm_matches_vectorized(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "vectorized")
        candidate = sample_distribution(label, crn, x, "nrm")
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_nrm_matches_tau(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "nrm")
        candidate = sample_distribution(label, crn, x, "tau")
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_vec_matches_python(self, sample_distribution, label, crn, x):
        # The admission gate for the batched tau-leap engine: approximate
        # sampler on the numpy Generator stream, so distributional identity
        # against the exact scalar reference is the whole contract.
        reference = sample_distribution(label, crn, x, "python")
        candidate = sample_distribution(label, crn, x, "tau-vec")
        assert reference.all_completed and candidate.all_completed
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_vec_matches_vectorized(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "vectorized")
        candidate = sample_distribution(label, crn, x, "tau-vec")
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_vec_matches_nrm(self, sample_distribution, label, crn, x):
        reference = sample_distribution(label, crn, x, "nrm")
        candidate = sample_distribution(label, crn, x, "tau-vec")
        _gate(label, reference, candidate)

    @pytest.mark.parametrize("label,crn,x", FAMILY_CASES, ids=FAMILY_IDS)
    def test_tau_vec_matches_tau(self, sample_distribution, label, crn, x):
        # Both tau variants approximate the same CTMC with the same CGP
        # bound; agreeing with each other *and* with the exact engines pins
        # the batched port to the scalar semantics.
        reference = sample_distribution(label, crn, x, "tau")
        candidate = sample_distribution(label, crn, x, "tau-vec")
        _gate(label, reference, candidate)

    def test_stable_outputs_equal_across_engines(self, sample_distribution):
        # Beyond distributional agreement: on a stable computation every
        # engine must converge to the same (deterministic) output.
        for label, crn, x in FAMILY_CASES:
            if label == "branching/binomial":
                continue  # genuinely stochastic output by construction
            expected = sample_distribution(label, crn, x, "python").outputs[0]
            for engine in ("python", "vectorized", "nrm", "tau", "tau-vec"):
                sample = sample_distribution(label, crn, x, engine)
                assert set(sample.outputs) == {expected}, (label, engine)


class _RateBiasedGillespiePolicy(GillespiePolicy):
    """A deliberately broken backend: inflates output-producing propensities.

    Models the failure mode the gates exist to catch — a backend whose
    per-reaction rates are subtly wrong (mis-ported rate constants, a wrong
    binomial term, a biased sampler) while everything else looks healthy.
    """

    def __init__(self, factor: float = 3.0) -> None:
        self.factor = factor

    def bind(self, compiled, rng):
        factor = self.factor
        output_index = compiled.output_index

        class _BiasedStepper(_GillespieStepper):
            def _propensity(self, r, counts):
                base = _GillespieStepper._propensity(self, r, counts)
                produces_output = any(
                    s == output_index and delta > 0
                    for s, delta in self.compiled.net_terms[r]
                )
                return base * factor if produces_output else base

        return _BiasedStepper(compiled, rng)


class _RateBiasedNRMPolicy(NextReactionPolicy):
    """The same injected bias, through the next-reaction machinery.

    Every propensity evaluation — the initial putative-time draws and every
    Gibson–Bruck clock repair — sees the inflated output pathway, so a port
    of the NRM engine with mis-scaled rates is modeled faithfully.
    """

    def __init__(self, factor: float = 3.0) -> None:
        self.factor = factor

    def bind(self, compiled, rng):
        factor = self.factor
        output_index = compiled.output_index

        class _BiasedNRMStepper(_NRMStepper):
            def _propensity(self, r, counts):
                base = _NRMStepper._propensity(self, r, counts)
                produces_output = any(
                    s == output_index and delta > 0
                    for s, delta in self.compiled.net_terms[r]
                )
                return base * factor if produces_output else base

        return _BiasedNRMStepper(compiled, rng)


class _RateBiasedBatchTauEngine:
    """The same injected rate bias, through the batched tau-leap machinery.

    Wraps :class:`~repro.sim.engine.BatchTauLeapEngine` with a compiled-CRN
    proxy whose ``propensities`` inflate every output-producing reaction, so
    the bias flows through *both* batched sampling paths — the Poisson leap
    intensities and the exact-fallback inverse-CDF selection — exactly as a
    mis-ported rate constant would.
    """

    def __init__(self, crn: CRN, seed: int, factor: float = 3.0) -> None:
        import numpy as np

        from repro.sim.engine import BatchTauLeapEngine

        self._engine = BatchTauLeapEngine(crn, seed=seed)
        compiled = self._engine.compiled
        scale = np.ones(compiled.n_reactions)
        for r, terms in enumerate(compiled.net_terms):
            if any(
                s == compiled.output_index and delta > 0 for s, delta in terms
            ):
                scale[r] = factor

        class _BiasedCompiled:
            def __getattr__(self, name):
                return getattr(compiled, name)

            def propensities(self, counts):
                return compiled.propensities(counts) * scale

        self._engine.compiled = _BiasedCompiled()

    def sample(self, x, n_seeds: int) -> DistributionSample:
        result = self._engine.run_on_input(x, batch=n_seeds)
        sample = DistributionSample(engine="tau-vec[rate-biased]")
        sample.steps = [int(v) for v in result.steps]
        sample.outputs = [int(v) for v in result.output_counts()]
        sample.all_completed = bool(result.silent.all())
        return sample


class TestGatePower:
    """A rate-biased policy must fail the same gates the honest engines pass."""

    def test_biased_policy_rejected_on_outputs(self, sample_distribution):
        label, crn, x = "branching/binomial", _branching_crn(), (400,)
        reference = sample_distribution(label, crn, x, "python")
        biased = sample_kinetic_distribution(
            crn,
            x,
            engine=_RateBiasedGillespiePolicy(factor=3.0),
            n_seeds=N_SEEDS,
            base_seed=BASE_SEED + 10_000,
        )
        # The bias triples the output pathway: Binomial(n, 1/4) becomes
        # Binomial(n, 1/2), a distribution shift the gate must flag.
        with pytest.raises(AssertionError, match="outputs distribution"):
            assert_distributions_match(
                reference, biased, metrics=("outputs",), alpha=ALPHA
            )

    def test_biased_policy_rejected_on_steps(self):
        # A CRN whose completion step count is rate-sensitive: the direct
        # pathway X -> Y finishes in one event, the detour X -> A -> Z takes
        # two, so steps-to-silence is n + Binomial(n, p_detour) and biasing
        # the output-producing pathway shifts p_detour from 1/2 to 1/5.
        (A,) = species("A")
        crn = CRN([(X >> Y), (X >> A), (A >> Z)], (X,), Y)
        x = (300,)
        reference = sample_kinetic_distribution(
            crn, x, engine="python", n_seeds=N_SEEDS, base_seed=BASE_SEED
        )
        biased = sample_kinetic_distribution(
            crn,
            x,
            engine=_RateBiasedGillespiePolicy(factor=4.0),
            n_seeds=N_SEEDS,
            base_seed=BASE_SEED,
        )
        with pytest.raises(AssertionError, match="steps distribution"):
            assert_distributions_match(
                reference, biased, metrics=("steps",), alpha=ALPHA
            )

    def test_biased_nrm_policy_rejected_on_outputs(self, sample_distribution):
        # The next-reaction machinery earns no exemption: the same injected
        # rate bias routed through putative-time draws and clock rescaling
        # must be flagged by the same gate the honest NRM sampler passes.
        label, crn, x = "branching/binomial", _branching_crn(), (400,)
        reference = sample_distribution(label, crn, x, "python")
        biased = sample_kinetic_distribution(
            crn,
            x,
            engine=_RateBiasedNRMPolicy(factor=3.0),
            n_seeds=N_SEEDS,
            base_seed=BASE_SEED + 20_000,
        )
        with pytest.raises(AssertionError, match="outputs distribution"):
            assert_distributions_match(
                reference, biased, metrics=("outputs",), alpha=ALPHA
            )

    def test_biased_batch_tau_engine_rejected_on_outputs(self, sample_distribution):
        # The batched tau-leap machinery earns no exemption either: the same
        # injected rate bias routed through batched Poisson intensities and
        # the exact-fallback selection must be flagged by the gate the honest
        # tau-vec sampler passes.
        label, crn, x = "branching/binomial", _branching_crn(), (400,)
        reference = sample_distribution(label, crn, x, "python")
        biased = _RateBiasedBatchTauEngine(
            crn, seed=BASE_SEED + 30_000, factor=3.0
        ).sample(x, N_SEEDS)
        assert biased.all_completed
        with pytest.raises(AssertionError, match="outputs distribution"):
            assert_distributions_match(
                reference, biased, metrics=("outputs",), alpha=ALPHA
            )

    def test_honest_policies_pass_where_biased_fails(self, sample_distribution):
        # Control for the rejection tests: on the very same CRN/input the
        # honest approximate samplers pass, so the gate discriminates bias
        # from approximation.
        label, crn, x = "branching/binomial", _branching_crn(), (400,)
        reference = sample_distribution(label, crn, x, "python")
        tau = sample_distribution(label, crn, x, "tau")
        assert_distributions_match(reference, tau, metrics=("outputs",), alpha=ALPHA)
        tau_vec = sample_distribution(label, crn, x, "tau-vec")
        assert_distributions_match(
            reference, tau_vec, metrics=("outputs",), alpha=ALPHA
        )


class TestTauErrorKnob:
    def test_tighter_epsilon_takes_more_selections(self):
        from repro.sim.kernel import SimulatorCore

        crn = minimum_spec().known_crn
        loose = SimulatorCore(
            crn, TauLeapPolicy(epsilon=0.2), rng=random.Random(1)
        ).run_on_input((5_000, 5_000))
        tight = SimulatorCore(
            crn, TauLeapPolicy(epsilon=0.01), rng=random.Random(1)
        ).run_on_input((5_000, 5_000))
        assert loose.silent and tight.silent
        assert loose.steps == tight.steps == 5_000  # same CTMC endpoint
        assert tight.selections > loose.selections  # smaller leaps

    def test_epsilon_flows_from_runconfig(self):
        from repro.api.config import RunConfig
        from repro.sim.runner import run_many

        crn = minimum_spec().known_crn
        report = run_many(
            crn,
            (2_000, 3_000),
            config=RunConfig(trials=3, seed=11, engine="tau", epsilon=0.05),
        )
        assert report.outputs == [2_000, 2_000, 2_000]
        assert report.all_silent_or_converged

    def test_tighter_epsilon_takes_more_leap_rounds_batched(self):
        from repro.sim.engine import BatchTauLeapEngine

        crn = minimum_spec().known_crn
        loose = BatchTauLeapEngine(crn, seed=1, epsilon=0.2).run_on_input(
            (5_000, 5_000), batch=4
        )
        tight = BatchTauLeapEngine(crn, seed=1, epsilon=0.01).run_on_input(
            (5_000, 5_000), batch=4
        )
        assert loose.silent.all() and tight.silent.all()
        assert loose.steps.tolist() == tight.steps.tolist() == [5_000] * 4
        assert tight.stats.selections > loose.stats.selections  # smaller leaps

    def test_epsilon_flows_from_runconfig_to_tau_vec(self):
        from repro.api.config import RunConfig
        from repro.sim.runner import run_many

        crn = minimum_spec().known_crn
        report = run_many(
            crn,
            (2_000, 3_000),
            config=RunConfig(trials=3, seed=11, engine="tau-vec", epsilon=0.05),
        )
        assert report.outputs == [2_000, 2_000, 2_000]
        assert report.all_silent_or_converged
