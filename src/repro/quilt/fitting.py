"""Inference of (eventually) quilt-affine structure from black-box samples.

Theorem 3.1's construction needs, for a semilinear nondecreasing
``f : N -> N``, the point ``n`` after which the function becomes quilt-affine,
the period ``p``, and the periodic finite differences ``δ_0, ..., δ_{p-1}``
(Fig. 5 of the paper).  :func:`fit_eventually_quilt_affine_1d` recovers that
data from a callable by scanning finite differences until they repeat
periodically, and :func:`fit_quilt_affine` recovers a multidimensional
quilt-affine representation given a period.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro.quilt.quilt_affine import QuiltAffine


@dataclass(frozen=True)
class EventuallyPeriodic1D:
    """The eventually quilt-affine structure of a 1D function (Fig. 5).

    Attributes
    ----------
    start:
        The smallest ``n`` such that for all ``x >= n``,
        ``f(x+1) - f(x) = deltas[x mod period]``.
    period:
        The period ``p`` of the finite differences.
    deltas:
        The periodic finite differences ``δ_0, ..., δ_{p-1}`` indexed by
        ``x mod p``.
    initial_values:
        The values ``f(0), ..., f(start)`` (inclusive), which the Theorem 3.1
        construction outputs directly while the leader counts the input.
    """

    start: int
    period: int
    deltas: Tuple[int, ...]
    initial_values: Tuple[int, ...]

    def value(self, x: int) -> int:
        """Evaluate the represented function at ``x``."""
        if x < 0:
            raise ValueError("inputs must be nonnegative")
        if x <= self.start:
            return self.initial_values[x]
        total = self.initial_values[self.start]
        for step in range(self.start, x):
            total += self.deltas[step % self.period]
        return total

    def gradient(self) -> Fraction:
        """The average slope ``(Σ δ_a) / p``, i.e. the gradient of the eventual quilt."""
        return Fraction(sum(self.deltas), self.period)

    def to_quilt_affine(self) -> QuiltAffine:
        """The quilt-affine function agreeing with ``f`` for ``x >= start``.

        The returned function may disagree with ``f`` below ``start`` (and may
        even be negative there), exactly as in the paper where the eventual
        quilt-affine pieces only describe large inputs.
        """
        gradient = self.gradient()
        offsets = {}
        for residue in range(self.period):
            # Find a representative point >= start in this residue class.
            x = self.start + ((residue - self.start) % self.period)
            offsets[(residue,)] = Fraction(self.value(x)) - gradient * x
        return QuiltAffine((gradient,), self.period, offsets, name="eventual", validate=False)


def fit_eventually_quilt_affine_1d(
    func: Callable[[int], int],
    max_start: int = 200,
    max_period: int = 36,
    confirm_periods: int = 3,
) -> EventuallyPeriodic1D:
    """Recover the eventually-periodic finite-difference structure of a 1D function.

    Parameters
    ----------
    func:
        The function ``f : N -> N`` (assumed semilinear and nondecreasing; the
        fit fails with ``ValueError`` otherwise).
    max_start, max_period:
        Search bounds for the start point ``n`` and period ``p``.
    confirm_periods:
        How many extra full periods of finite differences must match before the
        fit is accepted.

    Returns
    -------
    EventuallyPeriodic1D
        The recovered structure, with the smallest ``(start, period)`` found.
    """
    horizon = max_start + max_period * (confirm_periods + 2)
    values = [int(func(x)) for x in range(horizon + 1)]
    if any(b < a for a, b in zip(values, values[1:])):
        raise ValueError("the sampled function is not nondecreasing")
    differences = [b - a for a, b in zip(values, values[1:])]

    for start in range(max_start + 1):
        for period in range(1, max_period + 1):
            window = differences[start : start + period]
            needed = start + period * (confirm_periods + 1)
            if needed > len(differences):
                continue
            # Validate the candidate against every sampled finite difference, not
            # just a short confirmation window: this rejects spurious small
            # periods that only hold near the start of the sample.
            consistent = True
            for offset in range(start, len(differences)):
                if differences[offset] != window[(offset - start) % period]:
                    consistent = False
                    break
            if not consistent:
                continue
            # Reindex the deltas so that deltas[a] applies when x ≡ a (mod p).
            deltas = [0] * period
            for a in range(period):
                deltas[(start + a) % period] = window[a]
            return EventuallyPeriodic1D(
                start=start,
                period=period,
                deltas=tuple(deltas),
                initial_values=tuple(values[: start + 1]),
            )
    raise ValueError(
        "could not find an eventually periodic finite-difference structure within "
        f"start <= {max_start}, period <= {max_period}; is the function semilinear?"
    )


def fit_quilt_affine(
    func: Callable[[Sequence[int]], int],
    dimension: int,
    period: int,
    base_point: Optional[Sequence[int]] = None,
    name: str = "",
) -> QuiltAffine:
    """Recover a quilt-affine representation of a callable with known period.

    Thin wrapper over :meth:`QuiltAffine.from_callable`; raises ``ValueError``
    when the samples are inconsistent with a quilt-affine function of the given
    period.
    """
    return QuiltAffine.from_callable(func, dimension, period, base_point=base_point, name=name)


def detect_period_1d(
    func: Callable[[int], int],
    start: int,
    max_period: int = 36,
    confirm_periods: int = 3,
) -> Optional[int]:
    """The smallest period of the finite differences of ``func`` beyond ``start``.

    Returns ``None`` if no period up to ``max_period`` fits.
    """
    horizon = start + max_period * (confirm_periods + 2)
    values = [int(func(x)) for x in range(start, horizon + 1)]
    differences = [b - a for a, b in zip(values, values[1:])]
    for period in range(1, max_period + 1):
        window = differences[:period]
        length = period * (confirm_periods + 1)
        if length > len(differences):
            break
        if all(differences[i] == window[i % period] for i in range(length)):
            return period
    return None
