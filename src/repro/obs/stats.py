"""`RunStats` — the uniform per-run counter block shared by every engine.

Before this module existed each stepper hand-rolled its own counters
(``propensity_ops`` on the Gillespie and NRM steppers, ``selections`` on the
kernel result, nothing at all for propensity work under tau-leaping).
``RunStats`` is the one shape they all fill in now:

* ``events`` — reaction firings applied to the configuration (equals the
  kernel ``steps`` count: one leap that fires 10^4 reactions is 10^4 events
  under exact semantics but one *selection*);
* ``selections`` — scheduler iterations (draws/leaps/queue pops).  For exact
  engines ``selections == events``; tau-leaping collapses many events into
  one selection, which is exactly the 293× win the benchmarks track;
* ``propensity_ops`` — individual propensity (or applicability) evaluations,
  the dependency-graph currency the NRM gate is measured in;
* ``rng_draws`` — calls into the underlying ``random.Random`` stream.
  Counted by incrementing plain integers at the draw sites — the stream
  itself is **never** wrapped or touched, so seeded runs stay bit-identical;
* ``wall_s`` — wall-clock seconds for the run (monotonic clock).

The struct is mutable on purpose: steppers increment it in their hot loops,
so attribute stores must be cheap plain-int updates, not dataclass
replacement.  ``to_dict`` gives the JSON shape used by traces and reports.
"""

from __future__ import annotations

from typing import Dict, Union


class RunStats:
    """Mutable counter block for one simulation run (see module docstring)."""

    __slots__ = ("events", "selections", "propensity_ops", "rng_draws", "wall_s")

    def __init__(
        self,
        events: int = 0,
        selections: int = 0,
        propensity_ops: int = 0,
        rng_draws: int = 0,
        wall_s: float = 0.0,
    ) -> None:
        self.events = events
        self.selections = selections
        self.propensity_ops = propensity_ops
        self.rng_draws = rng_draws
        self.wall_s = wall_s

    def merge(self, other: "RunStats") -> "RunStats":
        """Fold ``other`` into this block (multi-trial aggregation)."""
        self.events += other.events
        self.selections += other.selections
        self.propensity_ops += other.propensity_ops
        self.rng_draws += other.rng_draws
        self.wall_s += other.wall_s
        return self

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "events": int(self.events),
            "selections": int(self.selections),
            "propensity_ops": int(self.propensity_ops),
            "rng_draws": int(self.rng_draws),
            "wall_s": float(self.wall_s),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunStats):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"RunStats(events={self.events}, selections={self.selections}, "
            f"propensity_ops={self.propensity_ops}, rng_draws={self.rng_draws}, "
            f"wall_s={self.wall_s:.6f})"
        )
