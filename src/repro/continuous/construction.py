"""Continuous output-oblivious construction for min-of-linear functions.

Mirrors the discrete Fig. 1 constructions in the continuous model: a rational
linear function ``(p/q)·x`` is computed by the reaction ``q X -> p Y`` (fired
by real extents), and the minimum of several pieces by the single reaction
``Y_1 + ... + Y_m -> Y``.  Fan-out reactions give each piece its own copy of
each input.  The resulting continuous CRN is output-oblivious, and its maximum
producible output equals ``min_k ∇g_k · x`` — the normal form that Theorem 8.2
identifies as the ∞-scaling of a discrete obliviously-computable function.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from repro.continuous.crn import ContinuousCRN, ContinuousReaction
from repro.continuous.functions import MinOfLinear
from repro.crn.species import Species


def build_min_of_linear_continuous_crn(target: MinOfLinear, name: str = "") -> ContinuousCRN:
    """Build a continuous output-oblivious CRN computing ``min_k ∇g_k · x``.

    Every gradient component must be a nonnegative rational; components are
    realized by ``q X -> p Y_k`` reactions and the minimum by a single joining
    reaction.
    """
    dimension = target.dimension
    inputs = [Species(f"X{i + 1}") for i in range(dimension)]
    output = Species("Y")
    reactions: List[ContinuousReaction] = []

    piece_outputs: List[Species] = []
    for k, piece in enumerate(target.pieces):
        if not piece.is_nonnegative():
            raise ValueError("gradients must be componentwise nonnegative")
        piece_output = Species(f"P{k + 1}")
        piece_outputs.append(piece_output)
        for i, gradient in enumerate(piece.gradient):
            gradient = Fraction(gradient)
            if gradient == 0:
                continue
            copy = Species(f"X{i + 1}_{k + 1}")
            reactions.append(
                ContinuousReaction.build(
                    {copy: gradient.denominator}, {piece_output: gradient.numerator}
                )
            )

    # Fan-out: each input is split into one copy per piece that uses it.
    for i in range(dimension):
        copies: Dict[Species, int] = {}
        for k, piece in enumerate(target.pieces):
            if Fraction(piece.gradient[i]) != 0:
                copies[Species(f"X{i + 1}_{k + 1}")] = 1
        if copies:
            reactions.append(ContinuousReaction.build({inputs[i]: 1}, copies))

    # A piece whose gradient is identically zero contributes the constant 0,
    # which forces the overall minimum to 0: model it as an unproducible species.
    reactions.append(
        ContinuousReaction.build({sp: 1 for sp in piece_outputs}, {output: 1})
    )

    return ContinuousCRN(reactions, inputs, output, name=name or "min-of-linear")
