"""Package metadata for the conf_podc_SeversonHD19 reproduction.

Kept as a plain ``setup.py`` so editable installs work without network access
or the wheel package; ``pip install -e .`` or ``PYTHONPATH=src`` both work.
"""

from setuptools import find_packages, setup

setup(
    name="repro-composable-crn",
    # Kept in sync with repro.__version__ (tests/test_api_workbench.py enforces it).
    version="1.9.0",
    description=(
        "Reproduction of 'Composable computation in discrete chemical reaction "
        "networks' (PODC 2019): superadditivity characterization, CRN "
        "constructions, verification harness, a unified scalar simulation "
        "kernel with dependency-graph propensity updates, a vectorized batch "
        "simulation engine, and the repro.api workbench facade with a "
        "pluggable engine registry."
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        # Load-bearing for repro.geometry.cones and the repro.sim.engine
        # batch simulators.
        "numpy>=1.22",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
