"""Figure 2 benchmark: min(1, x) computed with and without a leader.

Regenerates Fig. 2: the leaderless CRN (``X -> Y``, ``2Y -> Y``) computes
``min(1, x)`` but consumes its output, whereas the single-leader CRN
(``L + X -> Y``) is output-oblivious.  The benchmark also demonstrates the
Section 9 point that ``min(1, x)`` is not superadditive, so no leaderless
output-oblivious CRN can exist for it (Observation 9.1).
"""

import pytest

from repro.core.superadditive import find_superadditivity_violation
from repro.functions.catalog import min_one_leaderless_crn, min_one_spec
from repro.verify.stable import verify_stable_computation


INPUTS = [(0,), (1,), (2,), (5,)]


def test_fig2_leaderless_crn(benchmark):
    crn = min_one_leaderless_crn()

    def run():
        return verify_stable_computation(crn, lambda x: min(1, x[0]), inputs=INPUTS)

    report = benchmark(run)
    assert report.passed
    print(f"\n[Fig. 2] leaderless CRN: output-oblivious={crn.is_output_oblivious()} (consumes Y via 2Y -> Y)")


def test_fig2_leader_crn(benchmark):
    spec = min_one_spec()

    def run():
        return verify_stable_computation(spec.known_crn, spec.func, inputs=INPUTS)

    report = benchmark(run)
    assert report.passed
    print(f"\n[Fig. 2] leader CRN: output-oblivious={spec.known_crn.is_output_oblivious()}")


def test_fig2_superadditivity_obstruction(benchmark):
    """Observation 9.1: min(1, x) is not superadditive, so the leader is essential."""

    def run():
        return find_superadditivity_violation(lambda x: min(1, x[0]), 1, 5)

    violation = benchmark(run)
    assert violation is not None
    print(f"\n[Fig. 2] superadditivity violation witness: f{violation[0]} + f{violation[1]} > f(sum)")
