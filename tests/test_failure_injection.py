"""Failure-injection tests: the verification harness must catch broken constructions.

Each test takes a known-correct CRN, injects a realistic bug (dropping a
reaction, corrupting a stoichiometric coefficient, mis-wiring a composition,
deleting the leader), and asserts that the stable-computation verifier reports
a failure.  This guards against the harness silently passing everything.
"""

import pytest

from repro.core.construction_1d import build_1d_crn
from repro.core.construction_quilt import build_quilt_affine_crn
from repro.crn.network import CRN
from repro.crn.reaction import Reaction
from repro.crn.species import Species, species
from repro.functions.catalog import double_spec, minimum_spec
from repro.quilt.quilt_affine import QuiltAffine
from repro.verify.stable import verify_stable_computation


X, X1, X2, Y, W = species("X X1 X2 Y W")


def drop_reaction(crn: CRN, index: int) -> CRN:
    """A copy of ``crn`` with the reaction at ``index`` removed."""
    kept = [rxn for i, rxn in enumerate(crn.reactions) if i != index]
    return CRN(kept, crn.input_species, crn.output_species, leader=crn.leader, name=crn.name + "-broken")


class TestDroppedReactions:
    def test_dropping_the_only_reaction_of_min(self):
        broken = drop_reaction(minimum_spec().known_crn, 0)
        report = verify_stable_computation(broken, lambda x: min(x), inputs=[(1, 2)])
        assert not report.passed

    def test_dropping_a_periodic_reaction_from_theorem31(self):
        crn = build_1d_crn(lambda x: (3 * x) // 2)
        # Drop the last (periodic) reaction: large inputs now under-produce.
        broken = drop_reaction(crn, len(crn.reactions) - 1)
        report = verify_stable_computation(
            broken, lambda x: (3 * x[0]) // 2, inputs=[(4,), (5,)], exhaustive_limit=10_000
        )
        assert not report.passed


class TestCorruptedStoichiometry:
    def test_doubling_crn_that_triples(self):
        corrupted = CRN([X >> 3 * Y], (X,), Y, name="not-really-2x")
        report = verify_stable_computation(corrupted, lambda x: 2 * x[0], inputs=[(2,)])
        assert not report.passed

    def test_quilt_construction_with_wrong_offset(self):
        correct = QuiltAffine.floor_linear((3,), 2)
        wrong = QuiltAffine((correct.gradient[0],), 2, {(0,): 0, (1,): Fraction_half()}, validate=False)
        crn = build_quilt_affine_crn(wrong)
        report = verify_stable_computation(
            crn, lambda x: (3 * x[0]) // 2, inputs=[(1,), (3,)], exhaustive_limit=5_000
        )
        assert not report.passed


def Fraction_half():
    from fractions import Fraction

    return Fraction(1, 2)


class TestMisWiredComposition:
    def test_missing_leader_split(self):
        # A composition whose downstream leader is never released can never finish
        # producing the constant part of its output.
        L, Lg = Species("L"), Species("Lg")
        upstream = minimum_spec().known_crn
        downstream = CRN([Lg + W >> Y + Lg + Y], (W,), Y, leader=Lg, name="needs-leader")
        # Wire upstream output to W but "forget" to create Lg (no leader-split reaction).
        wired_upstream = upstream.with_output(W).with_prefix("u_", keep=[W])
        combined = CRN(
            list(wired_upstream.reactions) + list(downstream.reactions),
            wired_upstream.input_species,
            Y,
            leader=L,
            name="mis-wired",
        )
        report = verify_stable_computation(combined, lambda x: 2 * min(x), inputs=[(1, 1)])
        assert not report.passed

    def test_leaderless_variant_of_leader_construction_fails(self):
        # Removing the leader from the Fig. 2 CRN (L + X -> Y) leaves a CRN with a
        # dead reaction that computes the constant 0 instead of min(1, x).
        crn = CRN(["L + X -> Y"], (Species("X"),), Species("Y"), leader=None, name="orphaned")
        report = verify_stable_computation(crn, lambda x: min(1, x[0]), inputs=[(2,)])
        assert not report.passed


class TestWrongTargetFunction:
    def test_min_crn_is_not_max(self):
        report = verify_stable_computation(
            minimum_spec().known_crn, lambda x: max(x), inputs=[(0, 2), (3, 1)]
        )
        assert not report.passed
        assert len(report.failures()) == 2

    def test_double_crn_is_not_identity(self):
        report = verify_stable_computation(double_spec().known_crn, lambda x: x[0], inputs=[(1,)])
        assert not report.passed
