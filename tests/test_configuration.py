"""Unit tests for Configuration arithmetic and ordering."""

import pytest

from repro.crn.configuration import Configuration
from repro.crn.species import Species, species


X, Y, Z = species("X Y Z")


class TestConstruction:
    def test_zero_counts_dropped(self):
        config = Configuration({X: 0, Y: 2})
        assert config[X] == 0
        assert X not in config.support()
        assert config[Y] == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Configuration({X: -1})

    def test_non_integer_count_rejected(self):
        with pytest.raises(TypeError):
            Configuration({X: 1.5})

    def test_from_counts_by_name(self):
        config = Configuration.from_counts(X=3, Y=1)
        assert config[Species("X")] == 3 and config[Species("Y")] == 1

    def test_single_and_zero_constructors(self):
        assert Configuration.single(X, 4)[X] == 4
        assert Configuration.zero().total() == 0


class TestArithmetic:
    def test_addition(self):
        a = Configuration({X: 1, Y: 2})
        b = Configuration({Y: 3, Z: 1})
        total = a + b
        assert (total[X], total[Y], total[Z]) == (1, 5, 1)

    def test_subtraction(self):
        a = Configuration({X: 3, Y: 2})
        b = Configuration({X: 1, Y: 2})
        diff = a - b
        assert diff[X] == 2 and diff[Y] == 0

    def test_subtraction_underflow_rejected(self):
        with pytest.raises(ValueError):
            Configuration({X: 1}) - Configuration({X: 2})

    def test_scaled(self):
        assert Configuration({X: 2}).scaled(3)[X] == 6

    def test_updated_replaces_count(self):
        config = Configuration({X: 2}).updated(X, 5)
        assert config[X] == 5
        assert Configuration({X: 2}).updated(X, 0).total() == 0

    def test_total(self):
        assert Configuration({X: 2, Y: 3}).total() == 5


class TestOrdering:
    def test_pointwise_le(self):
        small = Configuration({X: 1})
        large = Configuration({X: 2, Y: 1})
        assert small <= large
        assert not large <= small
        assert large >= small

    def test_incomparable(self):
        a = Configuration({X: 2})
        b = Configuration({Y: 2})
        assert not a <= b and not b <= a

    def test_strict_inequality(self):
        a = Configuration({X: 1})
        b = Configuration({X: 1, Y: 1})
        assert a < b and b > a
        assert not a < a

    def test_equality_and_hash(self):
        assert Configuration({X: 1, Y: 0}) == Configuration({X: 1})
        assert hash(Configuration({X: 1})) == hash(Configuration({X: 1, Y: 0}))

    def test_additivity_of_order(self):
        # If A <= B then A + C <= B + C (the additivity used throughout the paper).
        a = Configuration({X: 1})
        b = Configuration({X: 2, Y: 1})
        c = Configuration({Z: 4, X: 1})
        assert a <= b
        assert a + c <= b + c


class TestDisplay:
    def test_str_sorted(self):
        assert str(Configuration({Y: 2, X: 1})) == "{1 X, 2 Y}"

    def test_empty_str(self):
        assert str(Configuration.zero()) == "{}"
