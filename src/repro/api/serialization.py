"""JSON round-trips for the API-layer value objects.

The serve protocol (:mod:`repro.serve.protocol`) and the lab artifacts both
need to move :class:`~repro.core.specs.FunctionSpec` references and
:class:`~repro.api.config.RunConfig` values across process and network
boundaries.  A spec wraps an arbitrary callable, so it cannot travel by
value; it travels **by registered name** (the same registry campaign cells
use — :func:`repro.lab.campaign.resolve_spec`) plus an optional content
fingerprint that detects a name rebound to a different function.

Every validation failure raises :exc:`ValueError` with a message that names
the offending field, so HTTP handlers can surface it verbatim as a 400.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.api.config import RunConfig
from repro.core.specs import FunctionSpec


def registered_name_for(spec: FunctionSpec) -> str:
    """The lab-registry name this exact spec instance is resolvable under.

    A catalog spec's display ``name`` ("min") can differ from its registry
    key ("minimum"); the wire form must carry the key, because the receiver
    resolves by it.  Falls back to ``spec.name`` for unregistered specs —
    :func:`spec_from_json_dict` will then reject it with a listing error.
    """
    from repro.lab.campaign import resolve_spec, spec_factory_names

    for name in spec_factory_names():
        try:
            if resolve_spec(name) is spec:
                return name
        except Exception:  # noqa: BLE001 — a broken factory must not mask the rest
            continue
    return spec.name


def spec_to_json_dict(spec: FunctionSpec, include_fingerprint: bool = True) -> Dict[str, Any]:
    """The wire form of a spec reference: name, dimension, content fingerprint.

    The fingerprint (see :func:`repro.lab.cache.spec_fingerprint`) pins the
    *function*, not just the name — a receiver can reject a payload whose
    name resolves to different behaviour on its side.
    """
    payload: Dict[str, Any] = {
        "name": registered_name_for(spec),
        "dimension": spec.dimension,
    }
    if include_fingerprint:
        from repro.lab.cache import spec_fingerprint  # lab sits above api

        payload["fingerprint"] = spec_fingerprint(spec)
    return payload


def spec_from_json_dict(data: Mapping[str, Any]) -> FunctionSpec:
    """Resolve a :func:`spec_to_json_dict` payload back to the registered spec.

    ``name`` must be registered (see
    :func:`repro.lab.campaign.register_spec_factory`); ``dimension`` and
    ``fingerprint``, when present, are checked against the resolved spec and
    mismatch with an error naming the field.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"spec must be a JSON object, got {type(data).__name__}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"spec field 'name' must be a nonempty string, got {name!r}")

    from repro.lab.campaign import resolve_spec  # lab sits above api

    spec = resolve_spec(name)  # raises ValueError listing registered names

    dimension = data.get("dimension")
    if dimension is not None and dimension != spec.dimension:
        raise ValueError(
            f"spec field 'dimension' is {dimension!r} but registered spec "
            f"{name!r} takes {spec.dimension} inputs"
        )
    fingerprint = data.get("fingerprint")
    if fingerprint is not None:
        from repro.lab.cache import spec_fingerprint

        actual = spec_fingerprint(spec)
        if fingerprint != actual:
            raise ValueError(
                f"spec field 'fingerprint' does not match the registered spec "
                f"{name!r} (payload {str(fingerprint)[:12]}…, registry "
                f"{actual[:12]}…): the name is bound to a different function "
                f"on this side"
            )
    return spec


def run_config_to_json_dict(config: RunConfig) -> Dict[str, Any]:
    """Module-level spelling of :meth:`RunConfig.to_json_dict`."""
    return config.to_json_dict()


def run_config_from_json_dict(
    data: Mapping[str, Any], default: Optional[RunConfig] = None
) -> RunConfig:
    """Module-level spelling of :meth:`RunConfig.from_json_dict`."""
    return RunConfig.from_json_dict(data, default=default)


__all__ = [
    "registered_name_for",
    "spec_to_json_dict",
    "spec_from_json_dict",
    "run_config_to_json_dict",
    "run_config_from_json_dict",
]
