"""Benchmark suite configuration.

Makes the package importable from a bare checkout, and skips every test in
this directory unless ``--benchmark`` was passed (see the root ``conftest.py``)
so the tier-1 test run stays fast.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    if config.getoption("benchmark", default=False):
        return
    skip = pytest.mark.skip(reason="benchmark suite; pass --benchmark to run")
    for item in items:
        if str(item.fspath).startswith(_HERE):
            item.add_marker(skip)
